// Bounds-checked big-endian (network byte order) byte readers and writers.
//
// Every wire format in this codebase (Ethernet, ARP, IPv4, UDP, TCP, LDP,
// fabric-manager control messages) serializes through these two classes so
// that framing bugs surface as explicit failures rather than memory errors.
//
// `ByteWriter` appends to a caller-owned std::vector<uint8_t>.
// `ByteReader` walks a borrowed span of bytes; all reads are checked and
// the reader latches into a failed state on the first out-of-bounds read
// (subsequent reads return zeros). Callers check `ok()` once at the end of
// parsing rather than after every field.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace portland {

class ByteWriter {
 public:
  /// Appends to `out`; the vector must outlive the writer.
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
    out_->push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    out_->push_back(static_cast<std::uint8_t>(v >> 24));
    out_->push_back(static_cast<std::uint8_t>(v >> 16));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
    out_->push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }

  /// Writes a length-prefixed (u16) string.
  void str(const std::string& s);

  /// Number of bytes written so far (size of the backing vector).
  [[nodiscard]] std::size_t size() const { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!check(1)) return 0;
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!check(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!check(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Reads exactly `n` bytes into `out`; on underflow fails and zero-fills.
  void bytes(std::span<std::uint8_t> out);

  /// Reads a length-prefixed (u16) string.
  [[nodiscard]] std::string str();

  /// Skips `n` bytes.
  void skip(std::size_t n) {
    if (check(n)) pos_ += n;
  }

  /// Remaining unread bytes as a view (does not consume them).
  [[nodiscard]] std::span<const std::uint8_t> remaining() const {
    return data_.subspan(pos_);
  }

  /// Consumes and returns the remaining bytes as a view.
  [[nodiscard]] std::span<const std::uint8_t> take_remaining() {
    auto r = data_.subspan(pos_);
    pos_ = data_.size();
    return r;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining_size() const { return data_.size() - pos_; }

  /// True if no read has run past the end of the buffer.
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  [[nodiscard]] bool check(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace portland
