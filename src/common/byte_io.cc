#include "common/byte_io.h"

#include <algorithm>

namespace portland {

void ByteWriter::str(const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  u16(static_cast<std::uint16_t>(n));
  bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), n));
}

void ByteReader::bytes(std::span<std::uint8_t> out) {
  if (!check(out.size())) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
              out.begin());
  pos_ += out.size();
}

std::string ByteReader::str() {
  const std::uint16_t n = u16();
  if (!check(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::string_view ByteReader::str_view() {
  const std::uint16_t n = u16();
  if (!check(n)) return {};
  const std::string_view v(reinterpret_cast<const char*>(data_.data() + pos_),
                           n);
  pos_ += n;
  return v;
}

}  // namespace portland
