// Counted-bytes estimators for the state-size accounting (E5/E19).
//
// The compact tables report exact vector footprints; the legacy std::map /
// unordered_map structures are estimated with libstdc++'s per-node
// overheads (3 pointers + color word for an _Rb_tree_node, forward pointer
// + cached hash for a _Hash_node) so the before/after comparison charges
// the node-allocating containers what the allocator actually hands them.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace portland {

/// _Rb_tree_node header: parent/left/right pointers + color (padded).
inline constexpr std::size_t kTreeNodeOverhead = 40;
/// _Hash_node header: next pointer + cached hash code.
inline constexpr std::size_t kHashNodeOverhead = 16;

template <typename K, typename V, typename C>
[[nodiscard]] std::size_t map_bytes(const std::map<K, V, C>& m) {
  return m.size() * (sizeof(std::pair<const K, V>) + kTreeNodeOverhead);
}

template <typename T, typename C>
[[nodiscard]] std::size_t set_bytes(const std::set<T, C>& s) {
  return s.size() * (sizeof(T) + kTreeNodeOverhead);
}

template <typename K, typename V, typename H, typename E>
[[nodiscard]] std::size_t unordered_map_bytes(
    const std::unordered_map<K, V, H, E>& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(std::pair<const K, V>) + kHashNodeOverhead);
}

template <typename T>
[[nodiscard]] std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace portland
