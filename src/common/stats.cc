#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace portland {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::reset() { *this = Accumulator(); }

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  cell(name) += delta;
}

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::reset() {
  // Zero in place rather than erase: per-frame paths hold handle()
  // pointers into the map nodes.
  for (auto& [name, value] : counters_) value = 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace portland
