// 48-bit Ethernet MAC address value type.
//
// MacAddress is a trivially-copyable value type used both for hosts'
// actual MACs (AMACs) and for PortLand's hierarchical pseudo-MACs (PMACs);
// the PMAC field encoding lives in core/pmac.h.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace portland {

class ByteReader;
class ByteWriter;

class MacAddress {
 public:
  static constexpr std::size_t kSize = 6;

  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, kSize> bytes)
      : bytes_(bytes) {}

  /// Builds an address from the low 48 bits of `v` (big-endian layout:
  /// bits 47..40 become byte 0).
  [[nodiscard]] static constexpr MacAddress from_u64(std::uint64_t v) {
    std::array<std::uint8_t, kSize> b{};
    for (std::size_t i = 0; i < kSize; ++i) {
      b[kSize - 1 - i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return MacAddress(b);
  }

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  [[nodiscard]] static constexpr MacAddress broadcast() {
    return from_u64(0xFFFF'FFFF'FFFFULL);
  }

  /// The all-zero address (used as "unset").
  [[nodiscard]] static constexpr MacAddress zero() { return MacAddress(); }

  /// Parses "aa:bb:cc:dd:ee:ff"; returns zero() on malformed input.
  [[nodiscard]] static MacAddress parse(const std::string& text);

  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < kSize; ++i) v = (v << 8) | bytes_[i];
    return v;
  }

  [[nodiscard]] constexpr bool is_broadcast() const {
    return to_u64() == 0xFFFF'FFFF'FFFFULL;
  }
  [[nodiscard]] constexpr bool is_zero() const { return to_u64() == 0; }

  /// IEEE group bit: set for multicast and broadcast destinations.
  [[nodiscard]] constexpr bool is_multicast() const {
    return (bytes_[0] & 0x01) != 0;
  }

  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const {
    return bytes_;
  }

  [[nodiscard]] std::string to_string() const;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static MacAddress deserialize(ByteReader& r);

  friend constexpr bool operator==(const MacAddress& a, const MacAddress& b) {
    return a.bytes_ == b.bytes_;
  }
  friend constexpr bool operator!=(const MacAddress& a, const MacAddress& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const MacAddress& a, const MacAddress& b) {
    return a.to_u64() < b.to_u64();
  }

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

}  // namespace portland

template <>
struct std::hash<portland::MacAddress> {
  std::size_t operator()(const portland::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};
