#include "common/strings.h"

#include <cstdio>

namespace portland {

std::string str_vformat(const char* fmt, va_list ap) {
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
  va_end(ap_copy);
  if (needed <= 0) return {};
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = str_vformat(fmt, ap);
  va_end(ap);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace portland
