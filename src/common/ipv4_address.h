// IPv4 address value type.
//
// PortLand is a layer-2 fabric: all hosts share one subnet and IP addresses
// act purely as host identifiers that survive VM migration (requirement R1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace portland {

class ByteReader;
class ByteWriter;

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t v) : value_(v) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad "10.0.0.1"; returns the zero address on error.
  [[nodiscard]] static Ipv4Address parse(const std::string& text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }

  [[nodiscard]] std::string to_string() const;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Ipv4Address deserialize(ByteReader& r);

  friend constexpr bool operator==(Ipv4Address a, Ipv4Address b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Ipv4Address a, Ipv4Address b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Ipv4Address a, Ipv4Address b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace portland

template <>
struct std::hash<portland::Ipv4Address> {
  std::size_t operator()(portland::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
