// Deterministic pseudo-random number generation.
//
// Every experiment owns a seeded `Rng`; all stochastic choices (failure
// sites, workload permutations, LDP position proposals) flow from it so
// runs are exactly reproducible. The generator is xoshiro256**, seeded via
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace portland {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Independent stream `stream` of the family keyed by `seed`: the same
  /// (seed, stream) pair always yields the same sequence, and distinct
  /// streams are decorrelated (used for per-shard RNG in the parallel
  /// engine — shard s draws from stream s regardless of worker count).
  Rng(std::uint64_t seed, std::uint64_t stream);

  /// Uniform in [0, 2^64).
  [[nodiscard]] std::uint64_t next();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks `count` distinct indices from [0, n); count must be <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t count);

  /// Derives an independent child generator (for subsystems that must not
  /// perturb each other's streams).
  [[nodiscard]] Rng fork();

  /// Raw generator state, for checkpoint/restore. A generator with its
  /// state restored continues the exact sequence the saved one would have
  /// produced.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace portland
