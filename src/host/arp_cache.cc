#include "host/arp_cache.h"

namespace portland::host {

void ArpCache::insert(Ipv4Address ip, MacAddress mac, SimTime now) {
  entries_[ip] = Entry{mac, now};
}

std::optional<MacAddress> ArpCache::lookup(Ipv4Address ip, SimTime now) const {
  const auto it = entries_.find(ip);
  if (it == entries_.end()) return std::nullopt;
  if (now - it->second.learned_at > lifetime_) return std::nullopt;
  return it->second.mac;
}

}  // namespace portland::host
