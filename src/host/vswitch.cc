#include "host/vswitch.h"

#include "common/byte_io.h"
#include "net/ethernet.h"

namespace portland::host {

VSwitch::VSwitch(sim::Simulator& sim, std::string name, std::size_t vm_slots)
    : Device(sim, std::move(name)) {
  add_ports(1 + vm_slots);
}

void VSwitch::handle_frame(sim::PortId in_port, const sim::FramePtr& frame) {
  ByteReader r(sim::frame_span(frame));
  const net::EthernetHeader eth = net::EthernetHeader::deserialize(r);
  if (!r.ok()) {
    counters().add("rx_malformed");
    return;
  }

  // Learn local VMs only (never remap a VM to the uplink from reflected
  // frames).
  if (in_port != kUplink && !eth.src.is_multicast() && !eth.src.is_zero()) {
    macs_[eth.src] = in_port;
  }

  if (!eth.dst.is_multicast()) {
    const auto it = macs_.find(eth.dst);
    if (it != macs_.end()) {
      if (it->second != in_port) send(it->second, frame);
      return;  // local delivery (VM-to-VM stays inside the hypervisor)
    }
    // Unknown unicast: give it to the fabric; never reflect uplink frames
    // back up.
    if (in_port != kUplink) {
      send(kUplink, frame);
    } else {
      counters().add("drop_unknown_vm");
    }
    return;
  }

  // Broadcast/multicast: flood to everyone except the ingress.
  for (sim::PortId p = 0; p < port_count(); ++p) {
    if (p != in_port && port_connected(p)) send(p, frame);
  }
}

}  // namespace portland::host
