// Host: an unmodified end host (or VM) attached to the fabric by one port.
//
// PortLand requires zero host changes (paper §1): hosts here speak plain
// ARP / IPv4 / UDP / TCP and announce themselves with a gratuitous ARP on
// boot and after migration — exactly the signals the fabric's edge switches
// consume. The same Host class runs unchanged on the baseline Ethernet
// fabric, which is the point.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "host/arp_cache.h"
#include "host/tcp.h"
#include "net/packet.h"
#include "sim/device.h"

namespace portland::host {

struct HostConfig {
  SimDuration arp_cache_lifetime = seconds(600);
  SimDuration arp_retry_interval = millis(200);
  int arp_max_retries = 8;
  std::size_t max_pending_frames_per_dst = 256;
  /// Announce (gratuitous ARP) shortly after start; edge switches use this
  /// to assign PMACs and register the host with the fabric manager.
  bool announce_on_start = true;
  SimDuration announce_delay = millis(1);
  TcpConfig tcp;
  std::uint64_t seed = 0x9E3779B9;  // ISN generation
};

class Host : public sim::Device {
 public:
  Host(sim::Simulator& sim, std::string name, MacAddress mac, Ipv4Address ip,
       HostConfig config = {});
  ~Host() override;

  void handle_frame(sim::PortId in_port, const sim::FramePtr& frame) override;
  void start() override;

  /// Checkpoint: ARP cache, unresolved sends with their retry timers, TCP
  /// connections (created on demand for keys missing after a fresh-
  /// process restore; app deliver/finished callbacks must be re-installed
  /// by the application — in-place forks keep them automatically), ISN
  /// state. UDP/listener handler maps are construction wiring.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  [[nodiscard]] MacAddress mac() const { return mac_; }
  [[nodiscard]] Ipv4Address ip() const { return ip_; }

  // --- UDP -----------------------------------------------------------
  using UdpHandler = std::function<void(
      Ipv4Address src_ip, std::uint16_t src_port, std::uint16_t dst_port,
      std::span<const std::uint8_t> payload)>;

  /// Registers a receive handler for a local UDP port.
  void bind_udp(std::uint16_t port, UdpHandler handler);

  /// Sends a UDP datagram (resolving the destination with ARP as needed).
  void send_udp(Ipv4Address dst, std::uint16_t src_port,
                std::uint16_t dst_port, std::vector<std::uint8_t> payload);

  // --- TCP -----------------------------------------------------------
  /// Active-opens a connection; returns a stable pointer owned by the host.
  TcpConnection* tcp_connect(Ipv4Address dst, std::uint16_t dst_port);

  /// Listens; `on_accept` fires for each new inbound connection.
  void tcp_listen(std::uint16_t port,
                  std::function<void(TcpConnection&)> on_accept);

  // --- multicast -------------------------------------------------------
  /// Joins `group` (sends an IGMP report) and delivers group UDP traffic
  /// to `handler`.
  void join_group(Ipv4Address group, UdpHandler handler);

  /// Leaves `group` (sends an IGMP leave).
  void leave_group(Ipv4Address group);

  /// Sends a UDP datagram to a multicast group (no ARP involved).
  void send_udp_multicast(Ipv4Address group, std::uint16_t src_port,
                          std::uint16_t dst_port,
                          std::vector<std::uint8_t> payload);

  // --- ARP -------------------------------------------------------------
  /// Announces (ip -> mac) to the fabric; called automatically at start and
  /// by the migration controller after re-attachment.
  void send_gratuitous_arp();

  [[nodiscard]] ArpCache& arp_cache() { return arp_cache_; }

  /// Number of ARP requests this host has transmitted (broadcasts in the
  /// baseline; intercepted by the edge switch in PortLand).
  [[nodiscard]] std::uint64_t arp_requests_sent() const {
    return arp_requests_sent_;
  }

 private:
  void handle_arp(const net::ArpMessage& arp);
  void handle_ipv4(const net::ParsedFrame& parsed);
  void deliver_udp(const net::ParsedFrame& parsed, bool multicast);
  /// Queues `frame` until `dst` resolves, then rewrites the Ethernet dst
  /// and transmits. Frames are built with a broadcast placeholder dst.
  void send_resolved(Ipv4Address dst, std::vector<std::uint8_t> frame);
  void send_arp_request(Ipv4Address target);
  void arp_retry_tick(Ipv4Address target);
  void flush_pending(Ipv4Address dst, MacAddress mac);
  TcpConnection& make_connection(TcpEndpointKey key);
  [[nodiscard]] std::uint32_t next_isn();

  MacAddress mac_;
  Ipv4Address ip_;
  HostConfig config_;
  ArpCache arp_cache_;
  std::uint64_t isn_state_;

  struct Pending {
    std::deque<std::vector<std::uint8_t>> frames;
    int retries = 0;
    std::unique_ptr<sim::Timer> timer;
    /// When the first ARP request for this destination went out; stamps
    /// the resolution-latency histogram when the answer arrives (E22).
    SimTime first_request_at = -1;
  };
  std::unordered_map<Ipv4Address, Pending> pending_;

  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::map<std::uint16_t, std::function<void(TcpConnection&)>> listeners_;
  std::map<TcpEndpointKey, std::unique_ptr<TcpConnection>> connections_;
  std::map<Ipv4Address, UdpHandler> group_handlers_;

  std::uint16_t next_ephemeral_port_ = 49152;
  std::uint64_t arp_requests_sent_ = 0;
};

}  // namespace portland::host
