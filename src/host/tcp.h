// TCP-lite: a compact but behaviorally faithful TCP implementation used by
// the convergence and VM-migration experiments.
//
// Implemented: three-way handshake, cumulative ACKs, byte-accurate sliding
// window, slow start and congestion avoidance, fast retransmit on three
// duplicate ACKs, RTT estimation (RFC 6298) with RTO_min = 200 ms and
// exponential backoff, FIN teardown, and payload integrity checking (each
// payload byte is a deterministic function of its sequence number, so the
// receiver verifies content without a retransmission buffer).
//
// Not implemented (not needed for the paper's experiments): window
// scaling, SACK, delayed ACKs, Nagle, TIME_WAIT, simultaneous open.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/ipv4_address.h"
#include "common/units.h"
#include "net/tcp.h"
#include "sim/simulator.h"

namespace portland::host {

struct TcpConfig {
  std::uint32_t mss = 1400;
  std::uint32_t initial_cwnd_segments = 10;  // RFC 6928 IW10
  std::uint16_t advertised_window = 65535;
  SimDuration rto_min = millis(200);
  SimDuration rto_max = seconds(60);
  SimDuration initial_rto = seconds(1);
  int max_syn_retries = 8;
};

/// Endpoint identity of one connection (local port, remote ip:port).
struct TcpEndpointKey {
  Ipv4Address remote_ip;
  std::uint16_t remote_port = 0;
  std::uint16_t local_port = 0;

  friend bool operator==(const TcpEndpointKey&, const TcpEndpointKey&) = default;
  friend bool operator<(const TcpEndpointKey& a, const TcpEndpointKey& b) {
    if (a.remote_ip != b.remote_ip) return a.remote_ip < b.remote_ip;
    if (a.remote_port != b.remote_port) return a.remote_port < b.remote_port;
    return a.local_port < b.local_port;
  }
};

class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kFinished,
  };

  /// Emits one segment toward the peer. Parameters: header (ports filled
  /// in), payload bytes.
  using SegmentSink =
      std::function<void(const net::TcpHeader&, std::span<const std::uint8_t>)>;

  TcpConnection(sim::Simulator& sim, TcpEndpointKey key, TcpConfig config,
                SegmentSink sink, std::uint32_t isn);

  /// Active open (client side).
  void connect();

  /// Passive open: adopt an incoming SYN (listener side).
  void accept_syn(const net::TcpHeader& syn);

  /// Appends `bytes` of application data to the send stream. Data content
  /// is synthesized from sequence numbers; the app supplies only a length.
  void send(std::uint64_t bytes);

  /// Half-closes after all queued data is delivered.
  void close();

  /// Host calls this for every inbound segment matching this connection.
  void handle_segment(const net::TcpHeader& h,
                      std::span<const std::uint8_t> payload);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  [[nodiscard]] const TcpEndpointKey& key() const { return key_; }

  /// Sender-side counters.
  [[nodiscard]] std::uint64_t bytes_acked() const { return bytes_acked_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint32_t cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] SimDuration current_rto() const { return rto_; }
  [[nodiscard]] double smoothed_rtt_ms() const {
    return to_millis(static_cast<SimDuration>(srtt_));
  }

  /// Receiver-side counters.
  [[nodiscard]] std::uint64_t bytes_delivered() const {
    return bytes_delivered_;
  }
  [[nodiscard]] bool payload_corruption_seen() const {
    return payload_corruption_;
  }
  /// Segments that arrived ahead of the cumulative point (reordering or
  /// loss); the E11 ECMP ablation compares this across modes.
  [[nodiscard]] std::uint64_t out_of_order_segments() const {
    return ooo_segments_;
  }

  /// Invoked whenever bytes_delivered() grows (receiver side).
  void set_deliver_callback(std::function<void(std::uint64_t total)> cb) {
    deliver_cb_ = std::move(cb);
  }
  /// Invoked once when the peer's FIN is delivered in order.
  void set_finished_callback(std::function<void()> cb) {
    finished_cb_ = std::move(cb);
  }

  /// The deterministic payload byte for absolute stream offset `offset`.
  [[nodiscard]] static std::uint8_t payload_byte(std::uint64_t offset) {
    return static_cast<std::uint8_t>((offset * 131) ^ (offset >> 7));
  }

  /// Checkpoint: full protocol state (send/receive windows, congestion
  /// control, RTT estimator, out-of-order store, pending RTO timer). The
  /// segment sink and app callbacks are construction wiring and survive
  /// in-place; a fresh-process restore re-creates the sink but app
  /// callbacks must be re-installed by the application.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

 private:
  void send_segment(std::uint32_t seq_wire, std::uint32_t len, bool fin,
                    bool syn, bool is_retransmission);
  void send_ack();
  void pump();                 // transmit while window allows
  void arm_rto();
  void on_rto();
  void on_ack(const net::TcpHeader& h);
  void deliver_in_order(std::uint32_t seq_wire,
                        std::span<const std::uint8_t> payload, bool fin);
  void enter_established();
  [[nodiscard]] std::uint32_t flight_size() const;
  [[nodiscard]] std::uint64_t offset_of(std::uint32_t seq_wire) const;
  void update_rtt(SimDuration sample);

  sim::Simulator* sim_;
  TcpEndpointKey key_;
  TcpConfig config_;
  SegmentSink sink_;

  State state_ = State::kClosed;

  // --- send side (all "wire" values are u32 sequence space) ---
  std::uint32_t isn_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_max_ = 0;       // highest sequence ever sent: ACKs up
                                    // to here stay valid across go-back-N
  std::uint64_t stream_len_ = 0;    // total app bytes requested
  std::uint64_t snd_offset_base_ = 0;  // u64 offset corresponding to snd_una_
  bool fin_queued_ = false;
  bool fin_sent_ = false;           // FIN currently outstanding/acked
  bool fin_ever_sent_ = false;
  std::uint32_t fin_wire_seq_ = 0;  // sequence number the FIN occupies
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  std::uint16_t peer_window_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;        // NewReno fast-recovery episode
  std::uint32_t recovery_point_ = 0;  // snd_nxt_ at loss detection
  SimDuration rto_;
  int backoff_ = 0;
  double srtt_ = 0;
  double rttvar_ = 0;
  bool rtt_valid_ = false;
  std::uint32_t timed_seq_ = 0;
  SimTime timed_sent_at_ = -1;
  sim::Timer rto_timer_;
  int syn_retries_ = 0;

  // --- receive side ---
  std::uint32_t irs_ = 0;      // initial receive seq
  std::uint32_t rcv_nxt_ = 0;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;
  // Out-of-order store: wire seq -> payload copy.
  std::map<std::uint32_t, std::vector<std::uint8_t>> ooo_;

  // --- counters ---
  std::uint64_t bytes_acked_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t ooo_segments_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  bool payload_corruption_ = false;

  std::function<void(std::uint64_t)> deliver_cb_;
  std::function<void()> finished_cb_;
};

}  // namespace portland::host
