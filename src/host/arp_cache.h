// Host-side ARP cache with entry aging.
//
// In a PortLand fabric the cached MAC for a peer is its PMAC, handed out by
// proxy ARP; entries go stale when a VM migrates, which is why gratuitous
// ARPs and the old-edge invalidation path exist (paper §3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "common/units.h"

namespace portland::host {

class ArpCache {
 public:
  explicit ArpCache(SimDuration entry_lifetime) : lifetime_(entry_lifetime) {}

  void insert(Ipv4Address ip, MacAddress mac, SimTime now);

  /// Returns the mapping if present and not expired at `now`.
  [[nodiscard]] std::optional<MacAddress> lookup(Ipv4Address ip,
                                                 SimTime now) const;

  /// True if a (possibly expired) entry exists.
  [[nodiscard]] bool contains(Ipv4Address ip) const {
    return entries_.count(ip) != 0;
  }

  void invalidate(Ipv4Address ip) { entries_.erase(ip); }
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] SimDuration lifetime() const { return lifetime_; }

 private:
  struct Entry {
    MacAddress mac;
    SimTime learned_at = 0;
  };

  SimDuration lifetime_;
  std::unordered_map<Ipv4Address, Entry> entries_;
};

}  // namespace portland::host
