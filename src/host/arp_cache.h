// Host-side ARP cache with entry aging.
//
// In a PortLand fabric the cached MAC for a peer is its PMAC, handed out by
// proxy ARP; entries go stale when a VM migrates, which is why gratuitous
// ARPs and the old-edge invalidation path exist (paper §3.3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "common/units.h"
#include "sim/snapshot.h"

namespace portland::host {

class ArpCache {
 public:
  explicit ArpCache(SimDuration entry_lifetime) : lifetime_(entry_lifetime) {}

  void insert(Ipv4Address ip, MacAddress mac, SimTime now);

  /// Returns the mapping if present and not expired at `now`.
  [[nodiscard]] std::optional<MacAddress> lookup(Ipv4Address ip,
                                                 SimTime now) const;

  /// True if a (possibly expired) entry exists.
  [[nodiscard]] bool contains(Ipv4Address ip) const {
    return entries_.count(ip) != 0;
  }

  void invalidate(Ipv4Address ip) { entries_.erase(ip); }
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] SimDuration lifetime() const { return lifetime_; }

  /// Checkpoint: entries sorted by IP so the image is deterministic (the
  /// map itself is unordered and only ever queried by key).
  void save_state(sim::SnapshotWriter& w) const {
    std::vector<std::pair<Ipv4Address, Entry>> sorted(entries_.begin(),
                                                      entries_.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.first.value() < b.first.value();
    });
    w.u32(static_cast<std::uint32_t>(sorted.size()));
    for (const auto& [ip, entry] : sorted) {
      w.u32(ip.value());
      w.u64(entry.mac.to_u64());
      w.i64(entry.learned_at);
    }
  }

  void restore_state(sim::SnapshotReader& r) {
    entries_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const Ipv4Address ip(r.u32());
      Entry entry;
      entry.mac = MacAddress::from_u64(r.u64());
      entry.learned_at = r.i64();
      entries_.emplace(ip, entry);
    }
  }

 private:
  struct Entry {
    MacAddress mac;
    SimTime learned_at = 0;
  };

  SimDuration lifetime_;
  std::unordered_map<Ipv4Address, Entry> entries_;
};

}  // namespace portland::host
