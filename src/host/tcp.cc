#include "host/tcp.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "sim/snapshot.h"

namespace portland::host {

using net::seq_leq;
using net::seq_lt;
using net::TcpHeader;

TcpConnection::TcpConnection(sim::Simulator& sim, TcpEndpointKey key,
                             TcpConfig config, SegmentSink sink,
                             std::uint32_t isn)
    : sim_(&sim),
      key_(key),
      config_(config),
      sink_(std::move(sink)),
      isn_(isn),
      rto_(config.initial_rto),
      rto_timer_(sim) {
  cwnd_ = config_.mss * config_.initial_cwnd_segments;
  ssthresh_ = 0x7FFFFFFF;
}

void TcpConnection::connect() {
  assert(state_ == State::kClosed);
  state_ = State::kSynSent;
  snd_una_ = isn_;
  snd_nxt_ = isn_ + 1;
  snd_max_ = isn_ + 1;
  send_segment(isn_, 0, /*fin=*/false, /*syn=*/true, /*is_retransmission=*/false);
  arm_rto();
}

void TcpConnection::accept_syn(const TcpHeader& syn) {
  assert(state_ == State::kClosed);
  state_ = State::kSynReceived;
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  peer_window_ = syn.window;
  snd_una_ = isn_;
  snd_nxt_ = isn_ + 1;
  snd_max_ = isn_ + 1;
  send_segment(isn_, 0, /*fin=*/false, /*syn=*/true, /*is_retransmission=*/false);
  arm_rto();
}

void TcpConnection::send(std::uint64_t bytes) {
  assert(!fin_queued_ && "send() after close()");
  stream_len_ += bytes;
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::close() {
  fin_queued_ = true;
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::enter_established() {
  state_ = State::kEstablished;
  snd_una_ = isn_ + 1;
  snd_nxt_ = isn_ + 1;
  snd_max_ = isn_ + 1;
  snd_offset_base_ = 0;
  rto_timer_.cancel();
  backoff_ = 0;
}

std::uint32_t TcpConnection::flight_size() const { return snd_nxt_ - snd_una_; }

std::uint64_t TcpConnection::offset_of(std::uint32_t seq_wire) const {
  return snd_offset_base_ + (seq_wire - snd_una_);
}

void TcpConnection::send_segment(std::uint32_t seq_wire, std::uint32_t len,
                                 bool fin, bool syn, bool is_retransmission) {
  TcpHeader h;
  h.src_port = key_.local_port;
  h.dst_port = key_.remote_port;
  h.seq = seq_wire;
  h.window = config_.advertised_window;
  h.flags.syn = syn;
  h.flags.fin = fin;
  if (state_ != State::kSynSent || is_retransmission || !syn) {
    // Everything except the very first SYN carries an ACK.
    if (state_ != State::kSynSent) {
      h.flags.ack = true;
      h.ack = rcv_nxt_;
    }
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0) {
    const std::uint64_t base = offset_of(seq_wire);
    for (std::uint32_t i = 0; i < len; ++i) {
      payload[i] = payload_byte(base + i);
    }
    h.flags.psh = true;
  }

  ++segments_sent_;
  if (is_retransmission) ++retransmissions_;

  // RTT timing (Karn's rule: never time retransmissions).
  if (!is_retransmission && (len > 0 || syn || fin) && timed_sent_at_ < 0 &&
      backoff_ == 0) {
    timed_seq_ = seq_wire + len + (syn ? 1 : 0) + (fin ? 1 : 0);
    timed_sent_at_ = sim_->now();
  }

  sink_(h, payload);
}

void TcpConnection::send_ack() {
  TcpHeader h;
  h.src_port = key_.local_port;
  h.dst_port = key_.remote_port;
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.flags.ack = true;
  h.window = config_.advertised_window;
  sink_(h, {});
}

void TcpConnection::pump() {
  if (state_ != State::kEstablished) return;
  const std::uint32_t window = std::min<std::uint32_t>(cwnd_, peer_window_);
  bool sent = false;
  while (true) {
    const std::uint64_t next_offset = offset_of(snd_nxt_);
    if (next_offset >= stream_len_) break;  // no unsent data
    if (flight_size() >= window) break;
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {config_.mss, stream_len_ - next_offset,
         static_cast<std::uint64_t>(window - flight_size())}));
    if (len == 0) break;
    // Bytes at or below snd_max_ have been on the wire before
    // (go-back-N retransmission); only time genuinely new data.
    const bool is_retx = net::seq_lt(snd_nxt_, snd_max_);
    send_segment(snd_nxt_, len, /*fin=*/false, /*syn=*/false, is_retx);
    snd_nxt_ += len;
    if (net::seq_lt(snd_max_, snd_nxt_)) snd_max_ = snd_nxt_;
    sent = true;
  }
  // Send FIN once all data is out.
  if (fin_queued_ && !fin_sent_ && offset_of(snd_nxt_) >= stream_len_ &&
      flight_size() < window) {
    send_segment(snd_nxt_, 0, /*fin=*/true, /*syn=*/false,
                 /*is_retransmission=*/fin_ever_sent_);
    fin_wire_seq_ = snd_nxt_;
    fin_ever_sent_ = true;
    snd_nxt_ += 1;
    if (net::seq_lt(snd_max_, snd_nxt_)) snd_max_ = snd_nxt_;
    fin_sent_ = true;
    state_ = State::kFinSent;
    sent = true;
  }
  if (sent || flight_size() > 0) arm_rto();
}

void TcpConnection::arm_rto() {
  rto_timer_.schedule_after(rto_, [this] { on_rto(); });
}

void TcpConnection::on_rto() {
  if (state_ == State::kClosed || state_ == State::kFinished) return;
  ++timeouts_;
  timed_sent_at_ = -1;  // Karn: abandon the timed sample

  if (state_ == State::kSynSent || state_ == State::kSynReceived) {
    if (++syn_retries_ > config_.max_syn_retries) {
      state_ = State::kClosed;
      return;
    }
    rto_ = std::min(rto_ * 2, config_.rto_max);
    send_segment(isn_, 0, /*fin=*/false, /*syn=*/true,
                 /*is_retransmission=*/true);
    arm_rto();
    return;
  }

  if (flight_size() == 0) return;

  // Loss: multiplicative back-off, collapse cwnd, and go-back-N — rewind
  // snd_nxt_ to snd_una_ so pump() retransmits the whole outstanding
  // window as the window re-opens (one crawling segment per backed-off
  // RTO would otherwise take forever after a burst loss).
  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  ++backoff_;
  rto_ = std::min(rto_ * 2, config_.rto_max);
  dup_acks_ = 0;
  in_recovery_ = false;

  snd_nxt_ = snd_una_;
  if (fin_sent_ && seq_leq(snd_una_, fin_wire_seq_)) {
    // The unacked FIN sits beyond the rewound point; pump() re-sends it.
    fin_sent_ = false;
    if (state_ == State::kFinSent) state_ = State::kEstablished;
  }
  ++retransmissions_;
  pump();
  arm_rto();
}

void TcpConnection::update_rtt(SimDuration sample) {
  const double s = static_cast<double>(sample);
  if (!rtt_valid_) {
    srtt_ = s;
    rttvar_ = s / 2;
    rtt_valid_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - s);
    srtt_ = 0.875 * srtt_ + 0.125 * s;
  }
  const double rto = srtt_ + std::max(4 * rttvar_, 1.0);
  rto_ = std::clamp(static_cast<SimDuration>(rto), config_.rto_min,
                    config_.rto_max);
}

void TcpConnection::on_ack(const TcpHeader& h) {
  if (!h.flags.ack) return;
  peer_window_ = h.window;
  const std::uint32_t ack = h.ack;

  if (seq_lt(snd_una_, ack) && seq_leq(ack, snd_max_)) {
    // New data acknowledged. ACKs are accepted up to snd_max_, the
    // highest sequence ever transmitted: after a go-back-N rewind the
    // receiver's cumulative ACK can legitimately sit beyond snd_nxt_.
    std::uint32_t newly = ack - snd_una_;
    std::uint32_t data_bytes = newly;
    // The SYN and FIN each occupy one sequence number but carry no data.
    const bool fin_covered = fin_ever_sent_ && ack == fin_wire_seq_ + 1;
    if (fin_covered) data_bytes -= 1;
    bytes_acked_ += data_bytes;
    snd_offset_base_ += data_bytes;
    snd_una_ = ack;
    if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;
    if (fin_covered) fin_sent_ = true;  // acked: never re-send
    dup_acks_ = 0;

    if (timed_sent_at_ >= 0 && seq_leq(timed_seq_, ack)) {
      update_rtt(sim_->now() - timed_sent_at_);
      timed_sent_at_ = -1;
    }
    backoff_ = 0;

    if (in_recovery_) {
      if (seq_lt(ack, recovery_point_)) {
        // NewReno partial ACK: the next hole is known lost — retransmit it
        // immediately instead of stalling for the RTO.
        const std::uint64_t una_offset = offset_of(snd_una_);
        if (una_offset < stream_len_ && flight_size() > 0) {
          const std::uint32_t len =
              static_cast<std::uint32_t>(std::min<std::uint64_t>(
                  {config_.mss, stream_len_ - una_offset,
                   static_cast<std::uint64_t>(flight_size())}));
          send_segment(snd_una_, len, /*fin=*/false, /*syn=*/false,
                       /*is_retransmission=*/true);
        }
        arm_rto();
        return;  // hold cwnd at ssthresh_ during recovery
      }
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    }

    // Congestion window growth.
    if (cwnd_ < ssthresh_) {
      cwnd_ += config_.mss;  // slow start
    } else {
      cwnd_ += std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<std::uint64_t>(config_.mss) * config_.mss / cwnd_));
    }

    if (flight_size() == 0 && offset_of(snd_una_) >= stream_len_ &&
        (!fin_queued_ || fin_sent_)) {
      rto_timer_.cancel();
    } else if (flight_size() > 0) {
      arm_rto();
    }
    pump();
    return;
  }

  if (ack == snd_una_ && flight_size() > 0) {
    // Duplicate ACK.
    if (++dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + NewReno recovery until the pre-loss high water.
      in_recovery_ = true;
      recovery_point_ = snd_nxt_;
      ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
      cwnd_ = ssthresh_ + 3 * config_.mss;
      const std::uint64_t una_offset = offset_of(snd_una_);
      if (una_offset < stream_len_) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                {config_.mss, stream_len_ - una_offset,
                 static_cast<std::uint64_t>(flight_size())}));
        send_segment(snd_una_, len, /*fin=*/false, /*syn=*/false,
                     /*is_retransmission=*/true);
      } else if (fin_sent_) {
        send_segment(snd_una_, 0, /*fin=*/true, /*syn=*/false,
                     /*is_retransmission=*/true);
      }
      arm_rto();
    }
  }
}

void TcpConnection::deliver_in_order(std::uint32_t seq_wire,
                                     std::span<const std::uint8_t> payload,
                                     bool fin) {
  if (fin) {
    peer_fin_seen_ = true;
    peer_fin_seq_ = seq_wire + static_cast<std::uint32_t>(payload.size());
  }

  if (!payload.empty()) {
    // A retransmission may overlap already-delivered data (go-back-N with
    // changed segmentation); trim to the undelivered tail.
    if (seq_lt(seq_wire, rcv_nxt_) &&
        seq_lt(rcv_nxt_, seq_wire + static_cast<std::uint32_t>(payload.size()))) {
      payload = payload.subspan(rcv_nxt_ - seq_wire);
      seq_wire = rcv_nxt_;
    }
    if (seq_wire == rcv_nxt_) {
      // In-order: verify the deterministic pattern and deliver.
      for (std::size_t i = 0; i < payload.size(); ++i) {
        if (payload[i] != payload_byte(bytes_delivered_ + i)) {
          payload_corruption_ = true;
        }
      }
      bytes_delivered_ += payload.size();
      rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
      // Drain contiguous out-of-order segments.
      auto it = ooo_.find(rcv_nxt_);
      while (it != ooo_.end()) {
        for (std::size_t i = 0; i < it->second.size(); ++i) {
          if (it->second[i] != payload_byte(bytes_delivered_ + i)) {
            payload_corruption_ = true;
          }
        }
        bytes_delivered_ += it->second.size();
        rcv_nxt_ += static_cast<std::uint32_t>(it->second.size());
        ooo_.erase(it);
        it = ooo_.find(rcv_nxt_);
      }
      // Discard stashed segments the cumulative point has passed.
      for (auto stale = ooo_.begin(); stale != ooo_.end();) {
        const std::uint32_t end =
            stale->first + static_cast<std::uint32_t>(stale->second.size());
        stale = seq_leq(end, rcv_nxt_) ? ooo_.erase(stale) : std::next(stale);
      }
      if (deliver_cb_) deliver_cb_(bytes_delivered_);
    } else if (seq_lt(rcv_nxt_, seq_wire)) {
      // Out of order: stash a copy (bounded by the advertised window).
      ++ooo_segments_;
      if (ooo_.size() < 1024 && ooo_.find(seq_wire) == ooo_.end()) {
        ooo_[seq_wire].assign(payload.begin(), payload.end());
      }
    }
    // Older duplicates need no action beyond the ACK below.
  }

  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ += 1;
    peer_fin_seen_ = false;  // consume exactly once
    if (state_ == State::kFinSent && flight_size() == 0) {
      state_ = State::kFinished;
    }
    if (finished_cb_) finished_cb_();
  }

  send_ack();
}

void TcpConnection::handle_segment(const TcpHeader& h,
                                   std::span<const std::uint8_t> payload) {
  switch (state_) {
    case State::kClosed:
      return;
    case State::kSynSent:
      if (h.flags.syn && h.flags.ack && h.ack == snd_nxt_) {
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        peer_window_ = h.window;
        enter_established();
        send_ack();
        pump();
      }
      return;
    case State::kSynReceived:
      if (h.flags.ack && h.ack == snd_nxt_) {
        enter_established();
        // Fall through to normal processing: the completing ACK may carry
        // data.
        if (!payload.empty() || h.flags.fin) {
          deliver_in_order(h.seq, payload, h.flags.fin);
        }
        pump();
      } else if (h.flags.syn) {
        // Retransmitted SYN: re-send SYN|ACK.
        send_segment(isn_, 0, false, true, /*is_retransmission=*/true);
      }
      return;
    case State::kEstablished:
    case State::kFinSent:
    case State::kFinished:
      if (h.flags.syn && h.flags.ack) {
        // Retransmitted SYN|ACK: our completing ACK was lost.
        send_ack();
        return;
      }
      on_ack(h);
      if (!payload.empty() || h.flags.fin) {
        deliver_in_order(h.seq, payload, h.flags.fin);
      }
      return;
  }
}

void TcpConnection::save_state(sim::SnapshotWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));

  w.u32(isn_);
  w.u32(snd_una_);
  w.u32(snd_nxt_);
  w.u32(snd_max_);
  w.u64(stream_len_);
  w.u64(snd_offset_base_);
  w.u8(fin_queued_ ? 1 : 0);
  w.u8(fin_sent_ ? 1 : 0);
  w.u8(fin_ever_sent_ ? 1 : 0);
  w.u32(fin_wire_seq_);
  w.u32(cwnd_);
  w.u32(ssthresh_);
  w.u16(peer_window_);
  w.u32(static_cast<std::uint32_t>(dup_acks_));
  w.u8(in_recovery_ ? 1 : 0);
  w.u32(recovery_point_);
  w.i64(rto_);
  w.u32(static_cast<std::uint32_t>(backoff_));
  w.f64(srtt_);
  w.f64(rttvar_);
  w.u8(rtt_valid_ ? 1 : 0);
  w.u32(timed_seq_);
  w.i64(timed_sent_at_);
  rto_timer_.save_state(w);
  w.u32(static_cast<std::uint32_t>(syn_retries_));

  w.u32(irs_);
  w.u32(rcv_nxt_);
  w.u8(peer_fin_seen_ ? 1 : 0);
  w.u32(peer_fin_seq_);
  w.u32(static_cast<std::uint32_t>(ooo_.size()));
  for (const auto& [seq, payload] : ooo_) {
    w.u32(seq);
    w.blob(payload);
  }

  w.u64(bytes_acked_);
  w.u64(bytes_delivered_);
  w.u64(ooo_segments_);
  w.u64(segments_sent_);
  w.u64(retransmissions_);
  w.u64(timeouts_);
  w.u8(payload_corruption_ ? 1 : 0);
}

void TcpConnection::restore_state(sim::SnapshotReader& r) {
  state_ = static_cast<State>(r.u8());

  isn_ = r.u32();
  snd_una_ = r.u32();
  snd_nxt_ = r.u32();
  snd_max_ = r.u32();
  stream_len_ = r.u64();
  snd_offset_base_ = r.u64();
  fin_queued_ = r.u8() != 0;
  fin_sent_ = r.u8() != 0;
  fin_ever_sent_ = r.u8() != 0;
  fin_wire_seq_ = r.u32();
  cwnd_ = r.u32();
  ssthresh_ = r.u32();
  peer_window_ = r.u16();
  dup_acks_ = static_cast<int>(r.u32());
  in_recovery_ = r.u8() != 0;
  recovery_point_ = r.u32();
  rto_ = r.i64();
  backoff_ = static_cast<int>(r.u32());
  srtt_ = r.f64();
  rttvar_ = r.f64();
  rtt_valid_ = r.u8() != 0;
  timed_seq_ = r.u32();
  timed_sent_at_ = r.i64();
  rto_timer_.restore_at(r, [this] { on_rto(); });
  syn_retries_ = static_cast<int>(r.u32());

  irs_ = r.u32();
  rcv_nxt_ = r.u32();
  peer_fin_seen_ = r.u8() != 0;
  peer_fin_seq_ = r.u32();
  ooo_.clear();
  const std::uint32_t n_ooo = r.u32();
  for (std::uint32_t i = 0; i < n_ooo && r.ok(); ++i) {
    const std::uint32_t seq = r.u32();
    ooo_[seq] = r.blob();
  }

  bytes_acked_ = r.u64();
  bytes_delivered_ = r.u64();
  ooo_segments_ = r.u64();
  segments_sent_ = r.u64();
  retransmissions_ = r.u64();
  timeouts_ = r.u64();
  payload_corruption_ = r.u8() != 0;
}

}  // namespace portland::host
