#include "host/host.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "net/igmp.h"
#include "obs/flight_recorder.h"
#include "sim/snapshot.h"

namespace portland::host {

using net::ArpMessage;
using net::ArpOp;
using net::ParsedFrame;

namespace {
/// The host owns these freshly built frame bytes, so the resolved
/// destination is patched in place instead of copying the whole buffer.
void patch_eth_dst(std::vector<std::uint8_t>& frame, MacAddress dst) {
  const auto& b = dst.bytes();
  std::copy(b.begin(), b.end(), frame.begin());
}

/// Log2 histogram bucket (in microseconds) for an ARP resolution latency.
/// Benches sum these across hosts to report resolution percentiles.
const char* arp_latency_bucket(SimDuration latency) {
  static constexpr const char* kBuckets[] = {
      "arp_latency_us_le_1",     "arp_latency_us_le_2",
      "arp_latency_us_le_4",     "arp_latency_us_le_8",
      "arp_latency_us_le_16",    "arp_latency_us_le_32",
      "arp_latency_us_le_64",    "arp_latency_us_le_128",
      "arp_latency_us_le_256",   "arp_latency_us_le_512",
      "arp_latency_us_le_1024",  "arp_latency_us_le_2048",
      "arp_latency_us_le_4096",  "arp_latency_us_le_8192",
      "arp_latency_us_le_16384", "arp_latency_us_le_32768",
      "arp_latency_us_over",
  };
  constexpr std::size_t kLast = std::size(kBuckets) - 1;
  const auto us = static_cast<std::uint64_t>(latency / kMicrosecond);
  std::size_t idx = 0;
  while (idx < kLast && (1ull << idx) < us) ++idx;
  return kBuckets[idx];
}
}  // namespace

Host::Host(sim::Simulator& sim, std::string name, MacAddress mac,
           Ipv4Address ip, HostConfig config)
    : Device(sim, std::move(name)),
      mac_(mac),
      ip_(ip),
      config_(config),
      arp_cache_(config.arp_cache_lifetime),
      isn_state_(config.seed ^ mac.to_u64()) {
  add_port();  // hosts have a single NIC, port 0
}

Host::~Host() = default;

void Host::start() {
  if (config_.announce_on_start) {
    sim().after(config_.announce_delay, [this] { send_gratuitous_arp(); });
  }
}

std::uint32_t Host::next_isn() {
  // SplitMix64 step; low 32 bits are plenty for a simulated ISN.
  isn_state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = isn_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<std::uint32_t>(z ^ (z >> 27));
}

void Host::send_gratuitous_arp() {
  const ArpMessage garp = ArpMessage::gratuitous(mac_, ip_);
  send(0, sim::make_frame(
              net::build_arp_frame(MacAddress::broadcast(), mac_, garp)));
  counters().add("garp_sent");
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void Host::handle_frame(sim::PortId in_port, const sim::FramePtr& frame) {
  // Edge switches emit LDMs on host-facing ports every period; drop them
  // on a raw EtherType peek so hosts never parse (or attach metadata to)
  // fabric control traffic.
  const auto bytes = sim::frame_span(frame);
  if (bytes.size() >= net::EthernetHeader::kSize &&
      (static_cast<std::uint16_t>(bytes[12]) << 8 | bytes[13]) ==
          net::to_u16(net::EtherType::kLdp)) {
    counters().add("rx_ignored");
    return;
  }
  const ParsedFrame& parsed = net::parsed_of(frame);
  if (!parsed.valid) {
    counters().add("rx_malformed");
    return;
  }
  if (flight_recorder() != nullptr) {
    record_hop(obs::HopEvent::kDeliver, frame, in_port, frame->size());
  }
  // A broadcast can loop back to its sender through the fabric's
  // down-phase; hosts ignore their own frames.
  if (parsed.eth.src == mac_) return;

  if (parsed.arp.has_value()) {
    handle_arp(*parsed.arp);
    return;
  }
  if (parsed.ipv4.has_value()) {
    handle_ipv4(parsed);
    return;
  }
  counters().add("rx_ignored");
}

void Host::handle_arp(const ArpMessage& arp) {
  // Gleaning: any ARP naming a sender refreshes entries we already track
  // or are actively resolving.
  if (!arp.sender_ip.is_zero() &&
      (arp_cache_.contains(arp.sender_ip) ||
       pending_.count(arp.sender_ip) != 0)) {
    arp_cache_.insert(arp.sender_ip, arp.sender_mac, sim().now());
    flush_pending(arp.sender_ip, arp.sender_mac);
  }

  if (arp.op == ArpOp::kRequest && arp.target_ip == ip_) {
    counters().add("arp_replies_sent");
    const ArpMessage reply =
        ArpMessage::reply(mac_, ip_, arp.sender_mac, arp.sender_ip);
    send(0, sim::make_frame(net::build_arp_frame(arp.sender_mac, mac_, reply)));
    return;
  }
  if (arp.op == ArpOp::kReply) {
    arp_cache_.insert(arp.sender_ip, arp.sender_mac, sim().now());
    flush_pending(arp.sender_ip, arp.sender_mac);
  }
}

void Host::handle_ipv4(const ParsedFrame& parsed) {
  const bool multicast = net::is_multicast_ip(parsed.ipv4->dst);
  if (!multicast && parsed.ipv4->dst != ip_) {
    counters().add("rx_wrong_ip");
    return;
  }

  if (parsed.udp.has_value()) {
    deliver_udp(parsed, multicast);
    return;
  }
  if (parsed.tcp.has_value()) {
    const net::TcpHeader& h = *parsed.tcp;
    const TcpEndpointKey key{parsed.ipv4->src, h.src_port, h.dst_port};
    const auto it = connections_.find(key);
    if (it != connections_.end()) {
      it->second->handle_segment(h, parsed.payload);
      return;
    }
    if (h.flags.syn && !h.flags.ack) {
      const auto listener = listeners_.find(h.dst_port);
      if (listener != listeners_.end()) {
        TcpConnection& conn = make_connection(key);
        conn.accept_syn(h);
        listener->second(conn);
        return;
      }
    }
    counters().add("tcp_rx_no_connection");
    return;
  }
  counters().add("rx_ip_other");
}

void Host::deliver_udp(const ParsedFrame& parsed, bool multicast) {
  if (multicast) {
    const auto it = group_handlers_.find(parsed.ipv4->dst);
    if (it == group_handlers_.end()) {
      counters().add("udp_rx_unjoined_group");
      return;
    }
    it->second(parsed.ipv4->src, parsed.udp->src_port, parsed.udp->dst_port,
               parsed.payload);
    return;
  }
  const auto it = udp_handlers_.find(parsed.udp->dst_port);
  if (it == udp_handlers_.end()) {
    counters().add("udp_rx_unbound");
    return;
  }
  it->second(parsed.ipv4->src, parsed.udp->src_port, parsed.udp->dst_port,
             parsed.payload);
}

// --------------------------------------------------------------------------
// UDP
// --------------------------------------------------------------------------

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::send_udp(Ipv4Address dst, std::uint16_t src_port,
                    std::uint16_t dst_port, std::vector<std::uint8_t> payload) {
  // Built with a broadcast placeholder; send_resolved patches the real dst.
  auto frame = net::build_udp_frame(MacAddress::broadcast(), mac_, ip_, dst,
                                    src_port, dst_port, payload);
  send_resolved(dst, std::move(frame));
}

// --------------------------------------------------------------------------
// TCP
// --------------------------------------------------------------------------

TcpConnection& Host::make_connection(TcpEndpointKey key) {
  auto sink = [this, key](const net::TcpHeader& h,
                          std::span<const std::uint8_t> payload) {
    auto frame = net::build_tcp_frame(MacAddress::broadcast(), mac_, ip_,
                                      key.remote_ip, h, payload);
    send_resolved(key.remote_ip, std::move(frame));
  };
  auto conn = std::make_unique<TcpConnection>(sim(), key, config_.tcp,
                                              std::move(sink), next_isn());
  TcpConnection& ref = *conn;
  connections_[key] = std::move(conn);
  return ref;
}

TcpConnection* Host::tcp_connect(Ipv4Address dst, std::uint16_t dst_port) {
  const TcpEndpointKey key{dst, dst_port, next_ephemeral_port_++};
  TcpConnection& conn = make_connection(key);
  conn.connect();
  return &conn;
}

void Host::tcp_listen(std::uint16_t port,
                      std::function<void(TcpConnection&)> on_accept) {
  listeners_[port] = std::move(on_accept);
}

// --------------------------------------------------------------------------
// Multicast
// --------------------------------------------------------------------------

void Host::join_group(Ipv4Address group, UdpHandler handler) {
  assert(net::is_multicast_ip(group));
  group_handlers_[group] = std::move(handler);
  net::IgmpMessage report{net::IgmpType::kMembershipReport, group};
  const auto payload = report.serialize();
  send(0, sim::make_frame(net::build_ipv4_frame(
              net::multicast_mac(group), mac_, ip_, group, net::kProtocolIgmp,
              payload, /*ttl=*/1)));
  counters().add("igmp_joins_sent");
}

void Host::leave_group(Ipv4Address group) {
  group_handlers_.erase(group);
  net::IgmpMessage leave{net::IgmpType::kLeaveGroup, group};
  const auto payload = leave.serialize();
  send(0, sim::make_frame(net::build_ipv4_frame(
              net::multicast_mac(group), mac_, ip_, group, net::kProtocolIgmp,
              payload, /*ttl=*/1)));
  counters().add("igmp_leaves_sent");
}

void Host::send_udp_multicast(Ipv4Address group, std::uint16_t src_port,
                              std::uint16_t dst_port,
                              std::vector<std::uint8_t> payload) {
  assert(net::is_multicast_ip(group));
  send(0, sim::make_frame(net::build_udp_frame(net::multicast_mac(group),
                                               mac_, ip_, group, src_port,
                                               dst_port, payload)));
}

// --------------------------------------------------------------------------
// ARP resolution
// --------------------------------------------------------------------------

void Host::send_resolved(Ipv4Address dst, std::vector<std::uint8_t> frame) {
  if (const auto mac = arp_cache_.lookup(dst, sim().now()); mac.has_value()) {
    patch_eth_dst(frame, *mac);
    send(0, sim::make_frame(std::move(frame)));
    return;
  }
  Pending& p = pending_[dst];
  if (p.frames.size() >= config_.max_pending_frames_per_dst) {
    counters().add("arp_pending_overflow");
    p.frames.pop_front();
  }
  p.frames.push_back(std::move(frame));
  if (!p.timer) {
    p.timer = std::make_unique<sim::Timer>(sim());
    p.retries = 0;
    p.first_request_at = sim().now();
    send_arp_request(dst);
    p.timer->schedule_after(config_.arp_retry_interval,
                            [this, dst] { arp_retry_tick(dst); });
  }
}

void Host::send_arp_request(Ipv4Address target) {
  ++arp_requests_sent_;
  counters().add("arp_requests_sent");
  const ArpMessage req = ArpMessage::request(mac_, ip_, target);
  send(0, sim::make_frame(
              net::build_arp_frame(MacAddress::broadcast(), mac_, req)));
}

void Host::arp_retry_tick(Ipv4Address target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (++p.retries > config_.arp_max_retries) {
    counters().add("arp_resolution_failed");
    pending_.erase(it);  // drop queued frames: unreachable destination
    return;
  }
  send_arp_request(target);
  p.timer->schedule_after(config_.arp_retry_interval,
                          [this, target] { arp_retry_tick(target); });
}

// --------------------------------------------------------------------------
// Checkpoint
// --------------------------------------------------------------------------

void Host::save_state(sim::SnapshotWriter& w) const {
  arp_cache_.save_state(w);

  // Unresolved sends: sorted by destination IP (the map is unordered and
  // only keyed lookups matter, so sorting is free determinism).
  std::vector<const std::pair<const Ipv4Address, Pending>*> pending;
  pending.reserve(pending_.size());
  for (const auto& kv : pending_) pending.push_back(&kv);
  std::sort(pending.begin(), pending.end(), [](const auto* a, const auto* b) {
    return a->first.value() < b->first.value();
  });
  w.u32(static_cast<std::uint32_t>(pending.size()));
  for (const auto* kv : pending) {
    w.u32(kv->first.value());
    w.u32(static_cast<std::uint32_t>(kv->second.retries));
    w.i64(kv->second.first_request_at);
    w.u32(static_cast<std::uint32_t>(kv->second.frames.size()));
    for (const std::vector<std::uint8_t>& frame : kv->second.frames) {
      w.blob(frame);
    }
    kv->second.timer->save_state(w);
  }

  w.u16(next_ephemeral_port_);
  w.u64(arp_requests_sent_);

  w.u32(static_cast<std::uint32_t>(connections_.size()));
  for (const auto& [key, conn] : connections_) {
    w.u32(key.remote_ip.value());
    w.u16(key.remote_port);
    w.u16(key.local_port);
    conn->save_state(w);
  }
  // Written after connections: a fresh-process restore creates missing
  // connections through make_connection, which advances isn_state_ — the
  // exact value is reapplied last either way.
  w.u64(isn_state_);
}

void Host::restore_state(sim::SnapshotReader& r) {
  arp_cache_.restore_state(r);

  pending_.clear();
  const std::uint32_t n_pending = r.u32();
  for (std::uint32_t i = 0; i < n_pending && r.ok(); ++i) {
    const Ipv4Address dst(r.u32());
    Pending& p = pending_[dst];
    p.retries = static_cast<int>(r.u32());
    p.first_request_at = r.i64();
    const std::uint32_t n_frames = r.u32();
    for (std::uint32_t j = 0; j < n_frames && r.ok(); ++j) {
      p.frames.push_back(r.blob());
    }
    p.timer = std::make_unique<sim::Timer>(sim());
    p.timer->restore_at(r, [this, dst] { arp_retry_tick(dst); });
  }

  next_ephemeral_port_ = r.u16();
  arp_requests_sent_ = r.u64();

  const std::uint32_t n_conns = r.u32();
  std::vector<TcpEndpointKey> restored;
  restored.reserve(n_conns);
  for (std::uint32_t i = 0; i < n_conns && r.ok(); ++i) {
    TcpEndpointKey key;
    key.remote_ip = Ipv4Address(r.u32());
    key.remote_port = r.u16();
    key.local_port = r.u16();
    auto it = connections_.find(key);
    TcpConnection& conn =
        it != connections_.end() ? *it->second : make_connection(key);
    conn.restore_state(r);
    restored.push_back(key);
  }
  // Drop connections the image does not know about (a fork target that
  // had diverged before restore).
  for (auto it = connections_.begin(); it != connections_.end();) {
    const bool keep = std::find(restored.begin(), restored.end(),
                                it->first) != restored.end();
    it = keep ? std::next(it) : connections_.erase(it);
  }
  isn_state_ = r.u64();
}

void Host::flush_pending(Ipv4Address dst, MacAddress mac) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (it->second.first_request_at >= 0) {
    counters().add("arp_resolutions");
    counters().add(arp_latency_bucket(sim().now() -
                                      it->second.first_request_at));
  }
  std::deque<std::vector<std::uint8_t>> frames = std::move(it->second.frames);
  pending_.erase(it);
  for (auto& f : frames) {
    patch_eth_dst(f, mac);
    send(0, sim::make_frame(std::move(f)));
  }
}

}  // namespace portland::host
