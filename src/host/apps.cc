#include "host/apps.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/byte_io.h"

namespace portland::host {

UdpFlowSender::UdpFlowSender(Host& host, Config config)
    : host_(&host),
      config_(config),
      timer_(host.sim(), config.interval, [this] { tick(); }) {
  assert(config_.payload_bytes >= 8);
}

void UdpFlowSender::start() { timer_.start(/*initial_delay=*/config_.phase); }

void UdpFlowSender::stop() { timer_.stop(); }

void UdpFlowSender::tick() {
  for (std::size_t i = 0; i < config_.burst; ++i) {
    std::vector<std::uint8_t> payload;
    payload.reserve(config_.payload_bytes);
    ByteWriter w(payload);
    w.u64(next_seq_++);
    payload.resize(config_.payload_bytes, 0);
    host_->send_udp(config_.dst, config_.src_port, config_.dst_port,
                    std::move(payload));
  }
}

void UdpFlowSender::save_state(sim::SnapshotWriter& w) const {
  w.u64(next_seq_);
  timer_.save_state(w);
}

void UdpFlowSender::restore_state(sim::SnapshotReader& r) {
  next_seq_ = r.u64();
  timer_.restore_state(r);
}

UdpFlowReceiver::UdpFlowReceiver(Host& host, std::uint16_t port, bool record) {
  host.bind_udp(port, [this, &host, record](Ipv4Address, std::uint16_t,
                                            std::uint16_t,
                                            std::span<const std::uint8_t>
                                                payload) {
    ByteReader r(payload);
    const std::uint64_t seq = r.u64();
    if (!r.ok()) return;
    ++count_;
    last_time_ = host.sim().now();
    if (record) arrivals_.push_back(Arrival{host.sim().now(), seq});
  });
}

SimDuration UdpFlowReceiver::max_gap(SimTime window_start,
                                     SimTime window_end) const {
  SimDuration best = 0;
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    const SimTime gap_start = arrivals_[i - 1].time;
    if (gap_start < window_start || gap_start > window_end) continue;
    best = std::max(best, arrivals_[i].time - gap_start);
  }
  return best;
}

std::vector<std::pair<SimTime, SimDuration>> UdpFlowReceiver::gaps_over(
    SimDuration threshold) const {
  std::vector<std::pair<SimTime, SimDuration>> out;
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    const SimDuration gap = arrivals_[i].time - arrivals_[i - 1].time;
    if (gap > threshold) out.emplace_back(arrivals_[i - 1].time, gap);
  }
  return out;
}

void UdpFlowReceiver::save_state(sim::SnapshotWriter& w) const {
  w.u64(count_);
  w.i64(last_time_);
  w.u32(static_cast<std::uint32_t>(arrivals_.size()));
  for (const Arrival& a : arrivals_) {
    w.i64(a.time);
    w.u64(a.seq);
  }
}

void UdpFlowReceiver::restore_state(sim::SnapshotReader& r) {
  count_ = r.u64();
  last_time_ = r.i64();
  arrivals_.clear();
  const std::uint32_t n = r.u32();
  arrivals_.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    Arrival a;
    a.time = r.i64();
    a.seq = r.u64();
    arrivals_.push_back(a);
  }
}

std::uint64_t UdpFlowReceiver::unique_sequences() const {
  std::set<std::uint64_t> seen;
  for (const Arrival& a : arrivals_) seen.insert(a.seq);
  return seen.size();
}

std::vector<std::size_t> permutation_pairing(std::size_t n, Rng& rng) {
  assert(n >= 2);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  // Retry until a derangement appears (expected ~e tries).
  while (true) {
    rng.shuffle(perm);
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (perm[i] == i) {
        ok = false;
        break;
      }
    }
    if (ok) return perm;
  }
}

}  // namespace portland::host
