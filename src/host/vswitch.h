// VSwitch: a minimal software switch (hypervisor vswitch) multiplexing
// several VMs onto one physical edge-switch port.
//
// This is how the PMAC `vmid` field earns its keep (paper §3.2): the edge
// switch sees multiple AMACs arrive on one port and assigns each a PMAC
// sharing (pod, position, port) but with a distinct vmid. The vswitch
// itself is deliberately dumb: local MAC learning for VM-to-VM traffic,
// everything else repeated up the single uplink — exactly the transparent
// behavior PortLand expects from unmodified virtualization stacks.
#pragma once

#include <unordered_map>

#include "common/mac_address.h"
#include "sim/device.h"

namespace portland::host {

class VSwitch : public sim::Device {
 public:
  /// Port 0 is the uplink (to the edge switch); ports 1..vm_slots are VM
  /// attachment points.
  VSwitch(sim::Simulator& sim, std::string name, std::size_t vm_slots);

  void handle_frame(sim::PortId in_port, const sim::FramePtr& frame) override;

  static constexpr sim::PortId kUplink = 0;

  /// First VM attachment port.
  [[nodiscard]] static constexpr sim::PortId vm_port(std::size_t slot) {
    return 1 + slot;
  }

  [[nodiscard]] std::size_t mac_table_size() const { return macs_.size(); }

 private:
  std::unordered_map<MacAddress, sim::PortId> macs_;
};

}  // namespace portland::host
