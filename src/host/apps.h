// Traffic applications used by tests, examples, and the experiment benches.
//
// `UdpFlowSender`/`UdpFlowReceiver` implement the paper's convergence
// methodology: a constant-rate sequence-numbered UDP stream; the receiver
// records arrival times, and convergence time after a failure is the gap
// between the last packet before the outage and the first packet after it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "host/host.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace portland::host {

class UdpFlowSender : public sim::Snapshotable {
 public:
  struct Config {
    Ipv4Address dst;
    std::uint16_t src_port = 7000;
    std::uint16_t dst_port = 7001;
    SimDuration interval = millis(1);   // 1000 packets/sec
    std::size_t payload_bytes = 64;     // >= 8 (sequence number)
    /// Frames emitted back-to-back per tick (shuffle/incast-style bursts;
    /// the NIC serializes them, so they hit the wire as one train).
    std::size_t burst = 1;
    /// Delay before the first tick after start(). Benches stagger flow
    /// phases with this so thousands of senders don't fire on the same
    /// nanosecond forever.
    SimDuration phase = 0;
  };

  UdpFlowSender(Host& host, Config config);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t packets_sent() const { return next_seq_; }

  /// Checkpoint (extras hook): sequence counter + pending tick.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

 private:
  void tick();

  Host* host_;
  Config config_;
  std::uint64_t next_seq_ = 0;
  sim::PeriodicTimer timer_;
};

class UdpFlowReceiver : public sim::Snapshotable {
 public:
  /// Binds `port` on `host` and records every arrival. Throughput benches
  /// pass `record = false` to keep only counters (no per-packet vector
  /// growth); the gap/convergence queries then see an empty trace.
  UdpFlowReceiver(Host& host, std::uint16_t port, bool record = true);

  struct Arrival {
    SimTime time;
    std::uint64_t seq;
  };

  [[nodiscard]] const std::vector<Arrival>& arrivals() const {
    return arrivals_;
  }
  [[nodiscard]] std::uint64_t packets_received() const { return count_; }
  [[nodiscard]] SimTime last_arrival_time() const { return last_time_; }

  /// Largest inter-arrival gap that *starts* within [window_start,
  /// window_end]. Returns 0 if fewer than two packets arrived. This is the
  /// paper's convergence metric when the window brackets the failure.
  [[nodiscard]] SimDuration max_gap(SimTime window_start,
                                    SimTime window_end) const;

  /// All gaps larger than `threshold`, as (gap start, duration) pairs.
  [[nodiscard]] std::vector<std::pair<SimTime, SimDuration>> gaps_over(
      SimDuration threshold) const;

  /// Count of distinct sequence numbers seen (duplicates excluded).
  [[nodiscard]] std::uint64_t unique_sequences() const;

  /// Checkpoint (extras hook): the arrival trace and counters. The UDP
  /// bind installed at construction is wiring and survives in place.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

 private:
  std::vector<Arrival> arrivals_;
  std::uint64_t count_ = 0;
  SimTime last_time_ = -1;
};

/// Builds a derangement-free random permutation pairing of host indices:
/// every host sends to exactly one other host, nobody to itself.
[[nodiscard]] std::vector<std::size_t> permutation_pairing(std::size_t n,
                                                           Rng& rng);

}  // namespace portland::host
