#include "topo/graph.h"

#include <algorithm>
#include <deque>
#include <map>

namespace portland::topo {

Graph Graph::from_network(const sim::Network& net) {
  Graph g;
  for (sim::Device* dev : net.devices()) {
    g.device_index_[dev] = g.add_node();
  }
  for (const auto& link : net.links()) {
    if (!link->is_up()) continue;
    const auto a = g.device_index_.at(&link->device(0));
    const auto b = g.device_index_.at(&link->device(1));
    g.add_edge(a, b);
  }
  return g;
}

std::size_t Graph::add_node() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

void Graph::add_edge(std::size_t a, std::size_t b) {
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

std::optional<std::size_t> Graph::index_of(const sim::Device* dev) const {
  const auto it = device_index_.find(dev);
  if (it == device_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> Graph::distance(std::size_t from,
                                           std::size_t to) const {
  if (from == to) return 0;
  std::vector<std::size_t> dist(adjacency_.size(), SIZE_MAX);
  std::deque<std::size_t> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (const std::size_t v : adjacency_[u]) {
      if (dist[v] != SIZE_MAX) continue;
      dist[v] = dist[u] + 1;
      if (v == to) return dist[v];
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

std::size_t Graph::component_count() const {
  std::vector<bool> seen(adjacency_.size(), false);
  std::size_t components = 0;
  for (std::size_t start = 0; start < adjacency_.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::deque<std::size_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const std::size_t v : adjacency_[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return components;
}

bool Graph::connected() const {
  return adjacency_.empty() || component_count() == 1;
}

std::size_t Graph::edge_disjoint_paths(std::size_t from, std::size_t to) const {
  if (from == to) return 0;
  // Unit-capacity max flow (Edmonds-Karp). Residual capacities per
  // directed edge; parallel edges accumulate.
  std::map<std::pair<std::size_t, std::size_t>, int> capacity;
  for (std::size_t u = 0; u < adjacency_.size(); ++u) {
    for (const std::size_t v : adjacency_[u]) {
      ++capacity[{u, v}];  // each undirected edge contributes both directions
    }
  }
  std::size_t flow = 0;
  while (true) {
    std::vector<std::size_t> parent(adjacency_.size(), SIZE_MAX);
    std::deque<std::size_t> queue{from};
    parent[from] = from;
    while (!queue.empty() && parent[to] == SIZE_MAX) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const std::size_t v : adjacency_[u]) {
        if (parent[v] != SIZE_MAX) continue;
        const auto it = capacity.find({u, v});
        if (it == capacity.end() || it->second <= 0) continue;
        parent[v] = u;
        queue.push_back(v);
      }
    }
    if (parent[to] == SIZE_MAX) return flow;
    for (std::size_t v = to; v != from; v = parent[v]) {
      const std::size_t u = parent[v];
      --capacity[{u, v}];
      ++capacity[{v, u}];
    }
    ++flow;
  }
}

}  // namespace portland::topo
