#include "topo/fat_tree.h"

#include <cassert>
#include <stdexcept>

#include "common/strings.h"

namespace portland::topo {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost:
      return "host";
    case NodeKind::kEdge:
      return "edge";
    case NodeKind::kAggregation:
      return "agg";
    case NodeKind::kCore:
      return "core";
  }
  return "?";
}

FatTree::FatTree(int k) : k_(k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree k must be even and >= 2");
  }
  const std::size_t half = static_cast<std::size_t>(k) / 2;

  // Bulk reservation: a k=64 tree has 70k nodes and 200k links — growing
  // these vectors by doubling churns hundreds of MB of reallocation.
  nodes_.reserve(num_hosts() + num_edge() + num_agg() + num_core());
  links_.reserve(num_hosts() + pods() * half * half + pods() * half * half);

  // Hosts.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t p = 0; p < half; ++p) {
        NodeSpec n;
        n.kind = NodeKind::kHost;
        n.name = str_format("host-p%zu-e%zu-h%zu", pod, e, p);
        n.pod = static_cast<std::uint16_t>(pod);
        n.position = static_cast<std::uint8_t>(e);
        n.port = static_cast<std::uint8_t>(p);
        nodes_.push_back(std::move(n));
      }
    }
  }
  // Edge switches.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      NodeSpec n;
      n.kind = NodeKind::kEdge;
      n.name = str_format("edge-p%zu-%zu", pod, e);
      n.pod = static_cast<std::uint16_t>(pod);
      n.position = static_cast<std::uint8_t>(e);
      nodes_.push_back(std::move(n));
    }
  }
  // Aggregation switches.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t a = 0; a < half; ++a) {
      NodeSpec n;
      n.kind = NodeKind::kAggregation;
      n.name = str_format("agg-p%zu-%zu", pod, a);
      n.pod = static_cast<std::uint16_t>(pod);
      n.position = static_cast<std::uint8_t>(a);
      nodes_.push_back(std::move(n));
    }
  }
  // Core switches: group i (which agg position they serve), member j.
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; j < half; ++j) {
      NodeSpec n;
      n.kind = NodeKind::kCore;
      n.name = str_format("core-%zu-%zu", i, j);
      n.pod = kNoPod;
      n.position = static_cast<std::uint8_t>(i);
      n.port = static_cast<std::uint8_t>(j);
      nodes_.push_back(std::move(n));
    }
  }

  // Host <-> edge links: host's single port 0 to edge port p.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t p = 0; p < half; ++p) {
        links_.push_back(LinkSpec{host_index(pod, e, p), edge_index(pod, e),
                                  /*port_a=*/0, /*port_b=*/p});
      }
    }
  }
  // Edge <-> aggregation: edge uplink (half + a) to agg downlink e.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        links_.push_back(LinkSpec{edge_index(pod, e), agg_index(pod, a),
                                  /*port_a=*/half + a, /*port_b=*/e});
      }
    }
  }
  // Aggregation <-> core: agg (pos a) uplink (half + j) to core (a, j)
  // port pod.
  for (std::size_t pod = 0; pod < pods(); ++pod) {
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t j = 0; j < half; ++j) {
        links_.push_back(LinkSpec{agg_index(pod, a), core_index(a, j),
                                  /*port_a=*/half + j, /*port_b=*/pod});
      }
    }
  }
}

std::size_t FatTree::host_index(std::size_t pod, std::size_t edge_pos,
                                std::size_t host_port) const {
  const std::size_t half = static_cast<std::size_t>(k_) / 2;
  assert(pod < pods() && edge_pos < half && host_port < half);
  return (pod * half + edge_pos) * half + host_port;
}

std::size_t FatTree::edge_index(std::size_t pod, std::size_t pos) const {
  const std::size_t half = static_cast<std::size_t>(k_) / 2;
  assert(pod < pods() && pos < half);
  return num_hosts() + pod * half + pos;
}

std::size_t FatTree::agg_index(std::size_t pod, std::size_t pos) const {
  const std::size_t half = static_cast<std::size_t>(k_) / 2;
  assert(pod < pods() && pos < half);
  return num_hosts() + num_edge() + pod * half + pos;
}

std::size_t FatTree::core_index(std::size_t group, std::size_t member) const {
  const std::size_t half = static_cast<std::size_t>(k_) / 2;
  assert(group < half && member < half);
  return num_hosts() + num_edge() + num_agg() + group * half + member;
}

std::vector<sim::Device*> BuiltFatTree::all_switches() const {
  std::vector<sim::Device*> out;
  out.reserve(edges.size() + aggs.size() + cores.size());
  out.insert(out.end(), edges.begin(), edges.end());
  out.insert(out.end(), aggs.begin(), aggs.end());
  out.insert(out.end(), cores.begin(), cores.end());
  return out;
}

BuiltFatTree instantiate(const FatTree& tree, sim::Network& net,
                         const DeviceFactory& make_host,
                         const DeviceFactory& make_switch,
                         sim::Link::Config host_link,
                         sim::Link::Config fabric_link) {
  BuiltFatTree built;
  built.hosts.reserve(tree.num_hosts());
  built.edges.reserve(tree.num_edge());
  built.aggs.reserve(tree.num_agg());
  built.cores.reserve(tree.num_core());
  built.host_links.reserve(tree.num_hosts());
  built.fabric_links.reserve(tree.links().size() - tree.num_hosts());
  std::vector<sim::Device*> by_index;
  by_index.reserve(tree.nodes().size());

  for (const NodeSpec& spec : tree.nodes()) {
    sim::Device& dev =
        spec.kind == NodeKind::kHost ? make_host(spec) : make_switch(spec);
    by_index.push_back(&dev);
    switch (spec.kind) {
      case NodeKind::kHost:
        assert(dev.port_count() >= 1);
        built.hosts.push_back(&dev);
        break;
      case NodeKind::kEdge:
        assert(dev.port_count() >= static_cast<std::size_t>(tree.k()));
        built.edges.push_back(&dev);
        break;
      case NodeKind::kAggregation:
        built.aggs.push_back(&dev);
        break;
      case NodeKind::kCore:
        built.cores.push_back(&dev);
        break;
    }
  }

  for (const LinkSpec& ls : tree.links()) {
    const bool access = tree.nodes()[ls.node_a].kind == NodeKind::kHost ||
                        tree.nodes()[ls.node_b].kind == NodeKind::kHost;
    sim::Link& link =
        net.connect(*by_index[ls.node_a], ls.port_a, *by_index[ls.node_b],
                    ls.port_b, access ? host_link : fabric_link);
    if (access) {
      built.host_links.push_back(&link);
    } else {
      built.fabric_links.push_back(&link);
    }
  }
  return built;
}

}  // namespace portland::topo
