// k-ary fat-tree topology description (Al-Fares et al., the multi-rooted
// tree PortLand targets).
//
// For even k >= 2:
//   * k pods; each pod has k/2 edge switches and k/2 aggregation switches;
//   * each edge switch connects k/2 hosts (down) and all k/2 aggregation
//     switches in its pod (up);
//   * (k/2)^2 core switches; core (i, j) connects to every pod's
//     aggregation switch at position i, so each aggregation switch at
//     position i reaches k/2 cores; each core has exactly one link per pod;
//   * k^3/4 hosts total.
//
// Port conventions (these define the PMAC `port` field and the forwarding
// logic's up/down split):
//   * edge switch: ports [0, k/2) face hosts — host at port p gets PMAC
//     port byte p; ports [k/2, k) are uplinks, uplink (k/2 + a) connects to
//     the pod's aggregation switch at position a;
//   * aggregation switch at position a: ports [0, k/2) are downlinks, port
//     e connects to the pod's edge switch at position e; ports [k/2, k) are
//     uplinks, uplink (k/2 + j) connects to core (a, j);
//   * core (i, j): port p connects to pod p.
//
// The description is pure data; `instantiate()` wires devices created by
// caller-supplied factories, so the same description backs PortLand
// fabrics, baseline Ethernet networks, and standalone analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"

namespace portland::topo {

enum class NodeKind { kHost, kEdge, kAggregation, kCore };

[[nodiscard]] const char* to_string(NodeKind kind);

/// Pod value used for core switches (they belong to no pod).
constexpr std::uint16_t kNoPod = 0xFFFF;

struct NodeSpec {
  NodeKind kind = NodeKind::kHost;
  std::string name;
  std::uint16_t pod = kNoPod;  // hosts/edge/agg: pod number; cores: kNoPod
  std::uint8_t position = 0;   // edge/agg: index in pod; host: its edge's
                               // position; core: group index i
  std::uint8_t port = 0;       // host: its port on the edge switch;
                               // core: index j within group i
};

struct LinkSpec {
  std::size_t node_a = 0;  // index into nodes()
  std::size_t node_b = 0;
  sim::PortId port_a = 0;
  sim::PortId port_b = 0;
};

class FatTree {
 public:
  /// k must be even and >= 2.
  explicit FatTree(int k);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::size_t pods() const { return static_cast<std::size_t>(k_); }
  [[nodiscard]] std::size_t hosts_per_edge() const {
    return static_cast<std::size_t>(k_) / 2;
  }
  [[nodiscard]] std::size_t edge_per_pod() const {
    return static_cast<std::size_t>(k_) / 2;
  }
  [[nodiscard]] std::size_t agg_per_pod() const {
    return static_cast<std::size_t>(k_) / 2;
  }
  [[nodiscard]] std::size_t num_hosts() const {
    return pods() * edge_per_pod() * hosts_per_edge();
  }
  [[nodiscard]] std::size_t num_edge() const { return pods() * edge_per_pod(); }
  [[nodiscard]] std::size_t num_agg() const { return pods() * agg_per_pod(); }
  [[nodiscard]] std::size_t num_core() const {
    return (static_cast<std::size_t>(k_) / 2) * (static_cast<std::size_t>(k_) / 2);
  }
  [[nodiscard]] std::size_t num_switches() const {
    return num_edge() + num_agg() + num_core();
  }

  [[nodiscard]] const std::vector<NodeSpec>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const { return links_; }

  /// Pod-aware shard plan for the parallel engine: pod p is shard p; core
  /// switches (and the fabric manager, by fabric-wiring convention) share
  /// the extra shard `core_shard()`.
  [[nodiscard]] std::size_t shard_count() const { return pods() + 1; }
  [[nodiscard]] sim::ShardId core_shard() const {
    return static_cast<sim::ShardId>(pods());
  }
  [[nodiscard]] sim::ShardId shard_of(const NodeSpec& spec) const {
    return spec.pod == kNoPod ? core_shard()
                              : static_cast<sim::ShardId>(spec.pod);
  }

  /// Index helpers into nodes(). Hosts first, then edge, agg, core.
  [[nodiscard]] std::size_t host_index(std::size_t pod, std::size_t edge_pos,
                                       std::size_t host_port) const;
  [[nodiscard]] std::size_t edge_index(std::size_t pod, std::size_t pos) const;
  [[nodiscard]] std::size_t agg_index(std::size_t pod, std::size_t pos) const;
  [[nodiscard]] std::size_t core_index(std::size_t group,
                                       std::size_t member) const;

 private:
  int k_;
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
};

/// Handles to the devices and links created by `instantiate`.
struct BuiltFatTree {
  std::vector<sim::Device*> hosts;
  std::vector<sim::Device*> edges;
  std::vector<sim::Device*> aggs;
  std::vector<sim::Device*> cores;
  /// Host<->edge access links, indexed like FatTree host indices.
  std::vector<sim::Link*> host_links;
  /// Switch<->switch fabric links.
  std::vector<sim::Link*> fabric_links;

  [[nodiscard]] std::vector<sim::Device*> all_switches() const;
};

/// Creates a device for `spec`; must add the right number of ports
/// (1 for hosts, k for switches) before returning.
using DeviceFactory = std::function<sim::Device&(const NodeSpec& spec)>;

/// Instantiates the topology into `net`, creating devices via the
/// factories and wiring every link per the conventions above.
[[nodiscard]] BuiltFatTree instantiate(const FatTree& tree, sim::Network& net,
                                       const DeviceFactory& make_host,
                                       const DeviceFactory& make_switch,
                                       sim::Link::Config host_link = {},
                                       sim::Link::Config fabric_link = {});

}  // namespace portland::topo
