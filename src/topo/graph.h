// Undirected graph view over a simulated Network, used by tests and
// benches as *ground truth*: connectivity after failures, shortest path
// lengths, and disjoint-path counts are computed here independently of any
// routing protocol under test.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/network.h"

namespace portland::topo {

class Graph {
 public:
  /// Builds the graph from `net`, including only links that are currently
  /// up (so failure injection is reflected automatically).
  static Graph from_network(const sim::Network& net);

  /// Empty graph; add nodes/edges manually.
  Graph() = default;

  std::size_t add_node();
  void add_edge(std::size_t a, std::size_t b);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  /// Node index for a device (only for from_network graphs).
  [[nodiscard]] std::optional<std::size_t> index_of(
      const sim::Device* dev) const;

  /// BFS hop distance; nullopt if unreachable.
  [[nodiscard]] std::optional<std::size_t> distance(std::size_t from,
                                                    std::size_t to) const;

  [[nodiscard]] bool reachable(std::size_t from, std::size_t to) const {
    return distance(from, to).has_value();
  }

  /// Number of connected components.
  [[nodiscard]] std::size_t component_count() const;

  /// True if every node is reachable from node 0 (or the graph is empty).
  [[nodiscard]] bool connected() const;

  /// Maximum number of edge-disjoint paths between two nodes
  /// (unit-capacity max-flow via BFS augmentation).
  [[nodiscard]] std::size_t edge_disjoint_paths(std::size_t from,
                                                std::size_t to) const;

  [[nodiscard]] const std::vector<std::vector<std::size_t>>& adjacency() const {
    return adjacency_;
  }

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::unordered_map<const sim::Device*, std::size_t> device_index_;
};

}  // namespace portland::topo
