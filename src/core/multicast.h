// Fabric-manager multicast state and tree computation (paper §3.6).
//
// The FM tracks, per group, the participant edge switches (receivers from
// IGMP joins, senders from first-packet reports). It picks a rendezvous
// core (deterministically from the group address) that still has alive
// paths to every participant pod, and installs per-switch port sets:
// forwarding replicates to every installed port except the ingress port.
// On a failure touching the tree the FM recomputes and reinstalls —
// which is why multicast recovery is slower than unicast in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/ipv4_address.h"
#include "core/fabric_graph.h"

namespace portland::core {

struct GroupState {
  /// Receiver edges: edge switch id -> host ports with members.
  std::map<SwitchId, std::set<std::uint16_t>> receivers;
  /// Edges with local senders (grafted on first transmission).
  std::set<SwitchId> senders;

  [[nodiscard]] std::set<SwitchId> participant_edges() const;
  [[nodiscard]] bool empty() const {
    return receivers.empty() && senders.empty();
  }
};

/// One computed tree: per switch, the replication port set.
struct MulticastTree {
  Ipv4Address group;
  SwitchId core = kInvalidSwitchId;
  std::map<SwitchId, std::set<std::uint16_t>> ports;

  friend bool operator==(const MulticastTree&, const MulticastTree&) = default;
};

/// Computes a tree for `group` over the current fabric graph, or
/// std::nullopt when no rendezvous core can reach every participant pod
/// (or there are no participants). Host-facing member ports from
/// `state.receivers` are merged into the edge switches' port sets.
[[nodiscard]] std::optional<MulticastTree> compute_multicast_tree(
    const FabricGraph& graph, Ipv4Address group, const GroupState& state);

}  // namespace portland::core
