#include "core/fabric_manager.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "obs/convergence_monitor.h"
#include "sim/snapshot.h"

namespace portland::core {

FabricManager::FabricManager(sim::Simulator& sim, ControlPlane& control,
                             PortlandConfig config)
    : sim_(&sim), control_(&control), config_(config) {
  shards_.resize(std::max<std::size_t>(1, config_.fm_shards));
  control_->register_endpoint(
      kFabricManagerId, [this](const ControlMessage& m) { handle_message(m); });
  if (shards_.size() > 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      control_->register_endpoint(
          static_cast<SwitchId>(kFmShardIdBase + s),
          [this, s](const ControlMessage& m) { handle_shard_message(s, m); });
    }
  }
  if (config_.fm_replica) {
    replica_.resize(1 + shards_.size());
    control_->register_endpoint(
        kFmReplicaId, [this](const ControlMessage& m) {
          if (const auto* d = std::get_if<FmDelta>(&m.body)) {
            on_replica_delta(*d);
          }
        });
  }
}

void FabricManager::send(SwitchId to, ControlBody body, SimDuration extra) {
  control_->send(to, ControlMessage{kFabricManagerId, std::move(body)}, extra);
}

void FabricManager::handle_message(const ControlMessage& msg) {
  counters_.add("rx_total");
  struct Dispatcher {
    FabricManager& fm;
    SwitchId sender;
    void operator()(const SwitchHello& m) { fm.on_hello(sender, m); }
    void operator()(const PodRequest&) { fm.on_pod_request(sender); }
    // Registry traffic reaching the primary is routed to the owning
    // shard's slice, so direct sends (fm_shards == 1, benches, tests)
    // behave identically to shard-addressed ones.
    void operator()(const HostRegister& m) {
      fm.on_host_register(sender, m, fm.shard_of(m.ip));
    }
    void operator()(const ArpQuery& m) {
      fm.on_arp_query(sender, m, fm.shard_of(m.ip));
    }
    void operator()(const FaultNotify& m) { fm.on_fault_notify(sender, m); }
    void operator()(const McastJoin& m) { fm.on_mcast_join(sender, m); }
    void operator()(const McastLeave& m) { fm.on_mcast_leave(sender, m); }
    void operator()(const McastSenderSeen& m) {
      fm.on_mcast_sender_seen(sender, m);
    }
    // Messages the FM only sends:
    void operator()(const PodAssignment&) {}
    void operator()(const ArpResponse&) {}
    void operator()(const PruneUpdate&) {}
    void operator()(const McastInstall&) {}
    void operator()(const McastRemove&) {}
    void operator()(const InvalidateHost&) {}
    void operator()(const FmDelta&) {}
  };
  std::visit(Dispatcher{*this, msg.sender}, msg.body);
}

void FabricManager::handle_shard_message(std::size_t shard,
                                         const ControlMessage& msg) {
  shards_[shard].counters.add("rx_total");
  if (const auto* q = std::get_if<ArpQuery>(&msg.body)) {
    on_arp_query(msg.sender, *q, shard);
  } else if (const auto* h = std::get_if<HostRegister>(&msg.body)) {
    on_host_register(msg.sender, *h, shard);
  }
}

// ---------------------------------------------------------------------------
// Topology & pods
// ---------------------------------------------------------------------------

void FabricManager::wipe_soft_state() {
  graph_ = FabricGraph();
  pod_by_requester_.clear();
  next_pod_ = 0;
  for (RegistryShard& s : shards_) s.hosts.clear();
  installed_prunes_.clear();
  groups_.clear();
  installed_trees_.clear();
  synced_switches_.clear();
}

void FabricManager::simulate_failover() {
  counters_.add("failovers");
  wipe_soft_state();
}

void FabricManager::on_hello(SwitchId sender, const SwitchHello& m) {
  // First hello from a switch this incarnation: flush any reroute state a
  // previous FM installed — this FM will recompute what is still needed.
  const auto sit =
      std::lower_bound(synced_switches_.begin(), synced_switches_.end(),
                       sender);
  if (sit == synced_switches_.end() || *sit != sender) {
    synced_switches_.insert(sit, sender);
    core_dirty_ = true;
    send(sender, PruneUpdate{/*flush=*/true, {}});
  }
  // Pod numbers are soft state too: re-learn the allocator's high-water
  // mark from locators so a failed-over FM never re-issues a pod in use.
  if (m.self.pod != kUnknownPod &&
      static_cast<std::uint16_t>(m.self.pod + 1) > next_pod_) {
    next_pod_ = static_cast<std::uint16_t>(m.self.pod + 1);
    core_dirty_ = true;
  }
  const HelloDelta delta = graph_.apply_hello(sender, m);
  if (!delta.changed) return;
  core_dirty_ = true;
  // Effective reachability (locator, or adjacency ∧ fault matrix) changed.
  // Re-derive any routing state built on the old view: a repair's
  // FaultNotify can arrive before the hellos that restore the adjacency it
  // needs, so prune withdrawal must also run here. The common carrier-loss
  // ordering (FaultNotify already killed the link, this hello merely
  // withdraws its adjacency) is a routing no-op and is skipped.
  // (No-op while nothing is installed, i.e. all of bootstrap.)
  if (delta.routing_changed && !installed_prunes_.empty()) {
    recompute_prunes({}, config_.fm_fault_processing);
  }
  if (!groups_.empty()) {
    recompute_all_groups(config_.fm_multicast_processing);
  }
}

void FabricManager::on_pod_request(SwitchId sender) {
  // Idempotent: one pod per requesting switch (the position-0 edge).
  auto it = std::lower_bound(
      pod_by_requester_.begin(), pod_by_requester_.end(), sender,
      [](const auto& e, SwitchId id) { return e.first < id; });
  if (it == pod_by_requester_.end() || it->first != sender) {
    it = pod_by_requester_.insert(it, {sender, next_pod_});
    ++next_pod_;
    core_dirty_ = true;
  }
  send(sender, PodAssignment{it->second});
}

// ---------------------------------------------------------------------------
// Hosts, proxy ARP, migration
// ---------------------------------------------------------------------------

void FabricManager::on_host_register(SwitchId sender, const HostRegister& m,
                                     std::size_t shard) {
  if (m.ip.is_zero()) return;
  RegistryShard& sh = shards_[shard];
  const HostRecord rec{m.pmac, m.amac, sender, m.edge_port};
  HostRecord* existing = sh.hosts.find(m.ip);
  if (existing != nullptr) {
    if (*existing == rec) return;  // steady-state refresh: nothing changed
    if (existing->pmac != m.pmac) {
      // The IP is reachable at a new PMAC: a VM migrated (paper §3.7).
      // Invalidate the stale mapping at the previous edge switch, which
      // will trap in-flight frames and correct stale ARP caches.
      sh.counters.add("migrations_detected");
      send(existing->edge, InvalidateHost{m.ip, existing->pmac, m.pmac});
    }
    *existing = rec;
  } else {
    sh.hosts.insert_or_assign(m.ip, rec);
  }
  sh.dirty = true;
}

void FabricManager::on_arp_query(SwitchId sender, const ArpQuery& m,
                                 std::size_t shard) {
  RegistryShard& sh = shards_[shard];
  sh.counters.add("arp_queries");
  const HostRecord* rec = sh.hosts.find(m.ip);
  if (rec == nullptr) {
    sh.counters.add("arp_misses");
    send(sender, ArpResponse{m.query_id, m.ip, MacAddress::zero(), false});
    return;
  }
  sh.counters.add("arp_hits");
  send(sender, ArpResponse{m.query_id, m.ip, rec->pmac, true});
}

void FabricManager::register_host_direct(Ipv4Address ip,
                                         const HostRecord& record) {
  RegistryShard& sh = shards_[shard_of(ip)];
  sh.hosts.insert_or_assign(ip, record);
  sh.dirty = true;
}

std::optional<FabricManager::HostRecord> FabricManager::host(
    Ipv4Address ip) const {
  const HostRecord* rec = shards_[shard_of(ip)].hosts.find(ip);
  if (rec == nullptr) return std::nullopt;
  return *rec;
}

const CounterSet& FabricManager::counters() const {
  merged_counters_.reset();
  for (const auto& [name, value] : counters_.all()) {
    merged_counters_.add(name, value);
  }
  for (const RegistryShard& s : shards_) {
    for (const auto& [name, value] : s.counters.all()) {
      merged_counters_.add(name, value);
    }
  }
  return merged_counters_;
}

// ---------------------------------------------------------------------------
// Hot-standby replica (FmDelta stream)
// ---------------------------------------------------------------------------

void FabricManager::start_replica_sync(
    const std::vector<sim::ShardId>& registry_shards,
    sim::ShardId core_shard) {
  if (!config_.fm_replica || core_sync_timer_ != nullptr) return;
  core_sync_timer_ = std::make_unique<sim::PeriodicTimer>(
      *sim_, config_.fm_replica_sync_interval, [this] { sync_core_section(); });
  {
    // The tick must run where the primary's handlers run: it reads the
    // topology/prune/multicast state those handlers own.
    sim::ShardGuard guard(*sim_, core_shard);
    core_sync_timer_->start();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].sync_timer = std::make_unique<sim::PeriodicTimer>(
        *sim_, config_.fm_replica_sync_interval,
        [this, s] { sync_shard_section(s); });
    // Each registry shard's tick runs on that shard's simulator shard so
    // serializing its slice never races its handler.
    sim::ShardGuard guard(
        *sim_, s < registry_shards.size() ? registry_shards[s] : core_shard);
    shards_[s].sync_timer->start();
  }
}

void FabricManager::sync_core_section() {
  if (!core_dirty_) return;
  core_dirty_ = false;
  FmDelta d;
  d.section = 0;
  d.version = ++core_version_;
  sim::SnapshotWriter w(d.image);
  save_core_state(w);
  send(kFmReplicaId, std::move(d));
}

void FabricManager::sync_shard_section(std::size_t shard) {
  RegistryShard& sh = shards_[shard];
  if (!sh.dirty) return;
  sh.dirty = false;
  FmDelta d;
  d.section = static_cast<std::uint32_t>(1 + shard);
  d.version = ++sh.delta_version;
  sim::SnapshotWriter w(d.image);
  save_registry(w, sh);
  send(kFmReplicaId, std::move(d));
}

void FabricManager::on_replica_delta(const FmDelta& m) {
  if (m.section >= replica_.size()) return;
  ReplicaSection& s = replica_[m.section];
  if (m.version <= s.version) return;  // reordered stale image
  s.version = m.version;
  s.image = m.image;
}

void FabricManager::failover_to_replica() {
  counters_.add("failovers");
  counters_.add("replica_failovers");
  wipe_soft_state();
  if (!replica_.empty() && replica_[0].version > 0) {
    sim::SnapshotReader r(replica_[0].image);
    restore_core_state(r);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t section = 1 + s;
    if (section < replica_.size() && replica_[section].version > 0) {
      sim::SnapshotReader r(replica_[section].image);
      restore_registry(r);
    }
  }
  // Everything the new incarnation now holds is unsynced: stream it all
  // again so a second failover isn't built on pre-takeover images.
  core_dirty_ = true;
  for (RegistryShard& s : shards_) s.dirty = true;
}

// ---------------------------------------------------------------------------
// Fault matrix & reroutes
// ---------------------------------------------------------------------------

void FabricManager::on_fault_notify(SwitchId sender, const FaultNotify& m) {
  counters_.add(m.link_up ? "fault_repairs" : "fault_notifications");
  if (monitor_ != nullptr) {
    // Recorded before the dedup below: the timeline's notify stage is
    // "the FM heard about the fault", which the first report satisfies
    // (the state machine keeps the earliest time).
    monitor_->on_fault_notify(monitor_shard_, sim_->now(), m.link_up);
  }
  if (!graph_.set_link_state(sender, m.neighbor, m.link_up)) {
    return;  // both endpoints report; second notification is a no-op
  }
  core_dirty_ = true;
  const std::vector<DstKey> keys = graph_.keys_for_link(sender, m.neighbor);
  recompute_prunes(keys, config_.fm_fault_processing);
  recompute_all_groups(config_.fm_multicast_processing);
}

void FabricManager::recompute_prunes(const std::vector<DstKey>& event_keys,
                                     SimDuration base_delay) {
  // Faults interact (a core link failure changes which aggs can serve an
  // earlier edge-link failure's destination), so refresh every key that is
  // either implicated by this event or already has prunes installed.
  std::set<DstKey> keys(event_keys.begin(), event_keys.end());
  for (const auto& [key, pm] : installed_prunes_) keys.insert(key);

  std::map<SwitchId, PruneUpdate> batches;
  for (const DstKey& key : keys) {
    PruneMap fresh = graph_.compute_prunes(key);
    PruneMap& old = installed_prunes_[key];

    for (const auto& [sw, avoid] : fresh) {
      const auto oit = old.find(sw);
      for (const SwitchId id : avoid) {
        if (oit == old.end() || oit->second.count(id) == 0) {
          batches[sw].entries.push_back(
              PruneEntry{key.pod, key.position, id, /*add=*/true});
        }
      }
    }
    for (const auto& [sw, avoid] : old) {
      const auto fit = fresh.find(sw);
      for (const SwitchId id : avoid) {
        if (fit == fresh.end() || fit->second.count(id) == 0) {
          batches[sw].entries.push_back(
              PruneEntry{key.pod, key.position, id, /*add=*/false});
        }
      }
    }

    if (fresh.empty()) {
      installed_prunes_.erase(key);
    } else {
      installed_prunes_[key] = std::move(fresh);
    }
  }

  if (!keys.empty()) core_dirty_ = true;
  counters_.add("prune_updates_sent", batches.size());
  for (auto& [sw, update] : batches) {
    send(sw, std::move(update), base_delay + config_.flow_install_cost);
  }
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

void FabricManager::on_mcast_join(SwitchId sender, const McastJoin& m) {
  groups_[m.group].receivers[sender].insert(m.host_port);
  core_dirty_ = true;
  recompute_group(m.group, config_.fm_multicast_processing);
}

void FabricManager::on_mcast_leave(SwitchId sender, const McastLeave& m) {
  const auto git = groups_.find(m.group);
  if (git == groups_.end()) return;
  const auto rit = git->second.receivers.find(sender);
  if (rit != git->second.receivers.end()) {
    rit->second.erase(m.host_port);
    if (rit->second.empty()) git->second.receivers.erase(rit);
  }
  core_dirty_ = true;
  recompute_group(m.group, config_.fm_multicast_processing);
  if (git->second.empty()) groups_.erase(git);
}

void FabricManager::on_mcast_sender_seen(SwitchId sender,
                                         const McastSenderSeen& m) {
  auto& senders = groups_[m.group].senders;
  if (senders.insert(sender).second) {
    core_dirty_ = true;
    recompute_group(m.group, config_.fm_multicast_processing);
  }
}

void FabricManager::recompute_group(Ipv4Address group, SimDuration base_delay) {
  const auto git = groups_.find(group);
  std::optional<MulticastTree> fresh;
  if (git != groups_.end()) {
    fresh = compute_multicast_tree(graph_, group, git->second);
  }

  const auto old_it = installed_trees_.find(group);
  const MulticastTree* old =
      old_it == installed_trees_.end() ? nullptr : &old_it->second;
  if (old != nullptr && fresh.has_value() && *old == *fresh) return;

  // Remove entries from switches leaving the tree.
  SimDuration delay = base_delay;
  if (old != nullptr) {
    for (const auto& [sw, ports] : old->ports) {
      if (!fresh.has_value() || fresh->ports.count(sw) == 0) {
        send(sw, McastRemove{group}, delay);
        delay += config_.flow_install_cost;
      }
    }
  }
  // Install (or refresh) entries, one flow-mod at a time — the serialized
  // installation is what stretches multicast recovery past unicast's.
  if (fresh.has_value()) {
    for (const auto& [sw, ports] : fresh->ports) {
      McastInstall install;
      install.group = group;
      install.ports.assign(ports.begin(), ports.end());
      send(sw, std::move(install), delay);
      delay += config_.flow_install_cost;
    }
    installed_trees_[group] = std::move(*fresh);
    counters_.add("mcast_trees_installed");
  } else {
    installed_trees_.erase(group);
    counters_.add("mcast_trees_unavailable");
  }
  core_dirty_ = true;
}

void FabricManager::recompute_all_groups(SimDuration base_delay) {
  // Collect names first: recompute_group may erase empty groups.
  std::vector<Ipv4Address> names;
  names.reserve(groups_.size());
  for (const auto& [group, state] : groups_) names.push_back(group);
  for (const Ipv4Address g : names) recompute_group(g, base_delay);
}

std::optional<MulticastTree> FabricManager::installed_tree(
    Ipv4Address group) const {
  const auto it = installed_trees_.find(group);
  if (it == installed_trees_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

namespace {

void save_port_map(sim::SnapshotWriter& w,
                   const std::map<SwitchId, std::set<std::uint16_t>>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [id, ports] : m) {
    w.u64(id);
    w.u32(static_cast<std::uint32_t>(ports.size()));
    for (const std::uint16_t p : ports) w.u16(p);
  }
}

void restore_port_map(sim::SnapshotReader& r,
                      std::map<SwitchId, std::set<std::uint16_t>>& m) {
  m.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const SwitchId id = r.u64();
    std::set<std::uint16_t>& ports =
        m.emplace_hint(m.end(), id, std::set<std::uint16_t>{})->second;
    const std::uint32_t np = r.u32();
    for (std::uint32_t p = 0; p < np && r.ok(); ++p) {
      ports.emplace_hint(ports.end(), r.u16());
    }
  }
}

/// A serialized sim::Timer image is fixed-size (armed, pending, shard,
/// deadline, seq); consumed when the restoring FM has no matching timer.
void skip_timer(sim::SnapshotReader& r) { r.skip(1 + 1 + 4 + 8 + 8); }

}  // namespace

void FabricManager::save_core_state(sim::SnapshotWriter& w) const {
  graph_.save_state(w);
  w.u16(next_pod_);
  w.u32(static_cast<std::uint32_t>(pod_by_requester_.size()));
  for (const auto& [id, pod] : pod_by_requester_) {
    w.u64(id);
    w.u16(pod);
  }
  w.u32(static_cast<std::uint32_t>(synced_switches_.size()));
  for (const SwitchId id : synced_switches_) w.u64(id);

  w.u32(static_cast<std::uint32_t>(installed_prunes_.size()));
  for (const auto& [key, prunes] : installed_prunes_) {
    w.u16(key.pod);
    w.u8(key.position);
    w.u32(static_cast<std::uint32_t>(prunes.size()));
    for (const auto& [sw, avoid] : prunes) {
      w.u64(sw);
      w.u32(static_cast<std::uint32_t>(avoid.size()));
      for (const SwitchId a : avoid) w.u64(a);
    }
  }

  w.u32(static_cast<std::uint32_t>(groups_.size()));
  for (const auto& [group, state] : groups_) {
    w.u32(group.value());
    save_port_map(w, state.receivers);
    w.u32(static_cast<std::uint32_t>(state.senders.size()));
    for (const SwitchId s : state.senders) w.u64(s);
  }

  w.u32(static_cast<std::uint32_t>(installed_trees_.size()));
  for (const auto& [group, tree] : installed_trees_) {
    w.u32(group.value());
    w.u32(tree.group.value());
    w.u64(tree.core);
    save_port_map(w, tree.ports);
  }
}

void FabricManager::restore_core_state(sim::SnapshotReader& r) {
  graph_.restore_state(r);
  next_pod_ = r.u16();

  pod_by_requester_.clear();
  const std::uint32_t n_pods = r.u32();
  pod_by_requester_.reserve(n_pods);
  for (std::uint32_t i = 0; i < n_pods && r.ok(); ++i) {
    const SwitchId id = r.u64();
    pod_by_requester_.emplace_back(id, r.u16());
  }

  synced_switches_.clear();
  const std::uint32_t n_synced = r.u32();
  synced_switches_.reserve(n_synced);
  for (std::uint32_t i = 0; i < n_synced && r.ok(); ++i) {
    synced_switches_.push_back(r.u64());
  }

  installed_prunes_.clear();
  const std::uint32_t n_prunes = r.u32();
  for (std::uint32_t i = 0; i < n_prunes && r.ok(); ++i) {
    DstKey key;
    key.pod = r.u16();
    key.position = r.u8();
    PruneMap& prunes =
        installed_prunes_
            .emplace_hint(installed_prunes_.end(), key, PruneMap{})
            ->second;
    const std::uint32_t n_sw = r.u32();
    for (std::uint32_t s = 0; s < n_sw && r.ok(); ++s) {
      const SwitchId sw = r.u64();
      std::set<SwitchId>& avoid =
          prunes.emplace_hint(prunes.end(), sw, std::set<SwitchId>{})->second;
      const std::uint32_t n_avoid = r.u32();
      for (std::uint32_t a = 0; a < n_avoid && r.ok(); ++a) {
        avoid.emplace_hint(avoid.end(), r.u64());
      }
    }
  }

  groups_.clear();
  const std::uint32_t n_groups = r.u32();
  for (std::uint32_t i = 0; i < n_groups && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    GroupState& state = groups_[group];
    restore_port_map(r, state.receivers);
    const std::uint32_t n_senders = r.u32();
    for (std::uint32_t s = 0; s < n_senders && r.ok(); ++s) {
      state.senders.insert(r.u64());
    }
  }

  installed_trees_.clear();
  const std::uint32_t n_trees = r.u32();
  for (std::uint32_t i = 0; i < n_trees && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    MulticastTree& tree = installed_trees_[group];
    tree.group = Ipv4Address(r.u32());
    tree.core = r.u64();
    restore_port_map(r, tree.ports);
  }
}

void FabricManager::save_registry(sim::SnapshotWriter& w,
                                  const RegistryShard& s) const {
  w.u32(static_cast<std::uint32_t>(s.hosts.size()));
  s.hosts.for_each_sorted([&w](const FmRegistry<HostRecord>::Entry& e) {
    w.u32(e.ip.value());
    w.u64(e.rec.pmac.to_u64());
    w.u64(e.rec.amac.to_u64());
    w.u64(e.rec.edge);
    w.u16(e.rec.edge_port);
  });
}

void FabricManager::restore_registry(sim::SnapshotReader& r) {
  // Entries land in whichever shard owns them under the *current* shard
  // count — a same-config restore reproduces the saved split exactly, a
  // mismatched one redistributes gracefully.
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const Ipv4Address ip(r.u32());
    HostRecord rec;
    rec.pmac = MacAddress::from_u64(r.u64());
    rec.amac = MacAddress::from_u64(r.u64());
    rec.edge = r.u64();
    rec.edge_port = r.u16();
    shards_[shard_of(ip)].hosts.insert_or_assign(ip, rec);
  }
}

void FabricManager::save_state(sim::SnapshotWriter& w) const {
  save_core_state(w);

  w.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const RegistryShard& s : shards_) {
    save_registry(w, s);
    w.u64(s.delta_version);
    w.u8(s.dirty ? 1 : 0);
    sim::save_counters(w, s.counters);
    w.u8(s.sync_timer != nullptr ? 1 : 0);
    if (s.sync_timer != nullptr) s.sync_timer->save_state(w);
  }

  sim::save_counters(w, counters_);

  w.u8(config_.fm_replica ? 1 : 0);
  if (config_.fm_replica) {
    w.u32(static_cast<std::uint32_t>(replica_.size()));
    for (const ReplicaSection& s : replica_) {
      w.u64(s.version);
      w.blob(s.image);
    }
    w.u64(core_version_);
    w.u8(core_dirty_ ? 1 : 0);
    w.u8(core_sync_timer_ != nullptr ? 1 : 0);
    if (core_sync_timer_ != nullptr) core_sync_timer_->save_state(w);
  }
}

void FabricManager::restore_state(sim::SnapshotReader& r) {
  restore_core_state(r);

  for (RegistryShard& s : shards_) {
    s.hosts.clear();
    s.delta_version = 0;
    s.dirty = false;
  }
  const std::uint32_t n_shards = r.u32();
  const bool same_split = n_shards == shards_.size();
  for (std::uint32_t i = 0; i < n_shards && r.ok(); ++i) {
    restore_registry(r);
    const std::uint64_t version = r.u64();
    const bool dirty = r.u8() != 0;
    RegistryShard& target = shards_[same_split ? i : i % shards_.size()];
    target.delta_version = std::max(target.delta_version, version);
    target.dirty = target.dirty || dirty;
    if (same_split) {
      sim::restore_counters(r, target.counters);
    } else {
      CounterSet scratch;
      sim::restore_counters(r, scratch);
      for (const auto& [name, value] : scratch.all()) {
        target.counters.add(name, value);
      }
    }
    const bool had_timer = r.u8() != 0;
    if (had_timer) {
      if (same_split && target.sync_timer != nullptr) {
        target.sync_timer->restore_state(r);
      } else {
        skip_timer(r);
      }
    }
  }

  sim::restore_counters(r, counters_);

  const bool had_replica = r.u8() != 0;
  for (ReplicaSection& s : replica_) s = ReplicaSection{};
  if (had_replica) {
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const std::uint64_t version = r.u64();
      std::vector<std::uint8_t> image = r.blob();
      if (i < replica_.size()) {
        replica_[i].version = version;
        replica_[i].image = std::move(image);
      }
    }
    core_version_ = r.u64();
    core_dirty_ = r.u8() != 0;
    const bool had_timer = r.u8() != 0;
    if (had_timer) {
      if (core_sync_timer_ != nullptr) {
        core_sync_timer_->restore_state(r);
      } else {
        skip_timer(r);
      }
    }
  } else {
    core_version_ = 0;
    core_dirty_ = false;
  }
}

}  // namespace portland::core
