#include "core/fabric_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/convergence_monitor.h"
#include "sim/snapshot.h"

namespace portland::core {

FabricManager::FabricManager(sim::Simulator& sim, ControlPlane& control,
                             PortlandConfig config)
    : sim_(&sim), control_(&control), config_(config) {
  control_->register_endpoint(
      kFabricManagerId, [this](const ControlMessage& m) { handle_message(m); });
}

void FabricManager::send(SwitchId to, ControlBody body, SimDuration extra) {
  control_->send(to, ControlMessage{kFabricManagerId, std::move(body)}, extra);
}

void FabricManager::handle_message(const ControlMessage& msg) {
  counters_.add("rx_total");
  struct Dispatcher {
    FabricManager& fm;
    SwitchId sender;
    void operator()(const SwitchHello& m) { fm.on_hello(sender, m); }
    void operator()(const PodRequest&) { fm.on_pod_request(sender); }
    void operator()(const HostRegister& m) { fm.on_host_register(sender, m); }
    void operator()(const ArpQuery& m) { fm.on_arp_query(sender, m); }
    void operator()(const FaultNotify& m) { fm.on_fault_notify(sender, m); }
    void operator()(const McastJoin& m) { fm.on_mcast_join(sender, m); }
    void operator()(const McastLeave& m) { fm.on_mcast_leave(sender, m); }
    void operator()(const McastSenderSeen& m) {
      fm.on_mcast_sender_seen(sender, m);
    }
    // Messages the FM only sends:
    void operator()(const PodAssignment&) {}
    void operator()(const ArpResponse&) {}
    void operator()(const PruneUpdate&) {}
    void operator()(const McastInstall&) {}
    void operator()(const McastRemove&) {}
    void operator()(const InvalidateHost&) {}
  };
  std::visit(Dispatcher{*this, msg.sender}, msg.body);
}

// ---------------------------------------------------------------------------
// Topology & pods
// ---------------------------------------------------------------------------

void FabricManager::simulate_failover() {
  counters_.add("failovers");
  graph_ = FabricGraph();
  pod_by_requester_.clear();
  next_pod_ = 0;
  hosts_.clear();
  installed_prunes_.clear();
  groups_.clear();
  installed_trees_.clear();
  synced_switches_.clear();
}

void FabricManager::on_hello(SwitchId sender, const SwitchHello& m) {
  // First hello from a switch this incarnation: flush any reroute state a
  // previous FM installed — this FM will recompute what is still needed.
  if (synced_switches_.insert(sender).second) {
    send(sender, PruneUpdate{/*flush=*/true, {}});
  }
  // Pod numbers are soft state too: re-learn the allocator's high-water
  // mark from locators so a failed-over FM never re-issues a pod in use.
  if (m.self.pod != kUnknownPod &&
      static_cast<std::uint16_t>(m.self.pod + 1) > next_pod_) {
    next_pod_ = static_cast<std::uint16_t>(m.self.pod + 1);
  }
  const HelloDelta delta = graph_.apply_hello(sender, m);
  if (!delta.changed) return;
  // Effective reachability (locator, or adjacency ∧ fault matrix) changed.
  // Re-derive any routing state built on the old view: a repair's
  // FaultNotify can arrive before the hellos that restore the adjacency it
  // needs, so prune withdrawal must also run here. The common carrier-loss
  // ordering (FaultNotify already killed the link, this hello merely
  // withdraws its adjacency) is a routing no-op and is skipped.
  // (No-op while nothing is installed, i.e. all of bootstrap.)
  if (delta.routing_changed && !installed_prunes_.empty()) {
    recompute_prunes({}, config_.fm_fault_processing);
  }
  if (!groups_.empty()) {
    recompute_all_groups(config_.fm_multicast_processing);
  }
}

void FabricManager::on_pod_request(SwitchId sender) {
  // Idempotent: one pod per requesting switch (the position-0 edge).
  auto [it, inserted] = pod_by_requester_.emplace(sender, next_pod_);
  if (inserted) ++next_pod_;
  send(sender, PodAssignment{it->second});
}

// ---------------------------------------------------------------------------
// Hosts, proxy ARP, migration
// ---------------------------------------------------------------------------

void FabricManager::on_host_register(SwitchId sender, const HostRegister& m) {
  if (m.ip.is_zero()) return;
  const auto it = hosts_.find(m.ip);
  if (it != hosts_.end() && it->second.pmac != m.pmac) {
    // The IP is reachable at a new PMAC: a VM migrated (paper §3.7).
    // Invalidate the stale mapping at the previous edge switch, which will
    // trap in-flight frames and correct stale ARP caches.
    counters_.add("migrations_detected");
    send(it->second.edge,
         InvalidateHost{m.ip, it->second.pmac, m.pmac});
  }
  hosts_[m.ip] = HostRecord{m.pmac, m.amac, sender, m.edge_port};
}

void FabricManager::on_arp_query(SwitchId sender, const ArpQuery& m) {
  counters_.add("arp_queries");
  const auto it = hosts_.find(m.ip);
  if (it == hosts_.end()) {
    counters_.add("arp_misses");
    send(sender, ArpResponse{m.query_id, m.ip, MacAddress::zero(), false});
    return;
  }
  counters_.add("arp_hits");
  send(sender, ArpResponse{m.query_id, m.ip, it->second.pmac, true});
}

std::optional<MacAddress> FabricManager::lookup_pmac(Ipv4Address ip) const {
  const auto it = hosts_.find(ip);
  if (it == hosts_.end()) return std::nullopt;
  return it->second.pmac;
}

void FabricManager::register_host_direct(Ipv4Address ip,
                                         const HostRecord& record) {
  hosts_[ip] = record;
}

std::optional<FabricManager::HostRecord> FabricManager::host(
    Ipv4Address ip) const {
  const auto it = hosts_.find(ip);
  if (it == hosts_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Fault matrix & reroutes
// ---------------------------------------------------------------------------

void FabricManager::on_fault_notify(SwitchId sender, const FaultNotify& m) {
  counters_.add(m.link_up ? "fault_repairs" : "fault_notifications");
  if (monitor_ != nullptr) {
    // Recorded before the dedup below: the timeline's notify stage is
    // "the FM heard about the fault", which the first report satisfies
    // (the state machine keeps the earliest time).
    monitor_->on_fault_notify(monitor_shard_, sim_->now(), m.link_up);
  }
  if (!graph_.set_link_state(sender, m.neighbor, m.link_up)) {
    return;  // both endpoints report; second notification is a no-op
  }
  const std::vector<DstKey> keys = graph_.keys_for_link(sender, m.neighbor);
  recompute_prunes(keys, config_.fm_fault_processing);
  recompute_all_groups(config_.fm_multicast_processing);
}

void FabricManager::recompute_prunes(const std::vector<DstKey>& event_keys,
                                     SimDuration base_delay) {
  // Faults interact (a core link failure changes which aggs can serve an
  // earlier edge-link failure's destination), so refresh every key that is
  // either implicated by this event or already has prunes installed.
  std::set<DstKey> keys(event_keys.begin(), event_keys.end());
  for (const auto& [key, pm] : installed_prunes_) keys.insert(key);

  std::map<SwitchId, PruneUpdate> batches;
  for (const DstKey& key : keys) {
    PruneMap fresh = graph_.compute_prunes(key);
    PruneMap& old = installed_prunes_[key];

    for (const auto& [sw, avoid] : fresh) {
      const auto oit = old.find(sw);
      for (const SwitchId id : avoid) {
        if (oit == old.end() || oit->second.count(id) == 0) {
          batches[sw].entries.push_back(
              PruneEntry{key.pod, key.position, id, /*add=*/true});
        }
      }
    }
    for (const auto& [sw, avoid] : old) {
      const auto fit = fresh.find(sw);
      for (const SwitchId id : avoid) {
        if (fit == fresh.end() || fit->second.count(id) == 0) {
          batches[sw].entries.push_back(
              PruneEntry{key.pod, key.position, id, /*add=*/false});
        }
      }
    }

    if (fresh.empty()) {
      installed_prunes_.erase(key);
    } else {
      installed_prunes_[key] = std::move(fresh);
    }
  }

  counters_.add("prune_updates_sent", batches.size());
  for (auto& [sw, update] : batches) {
    send(sw, std::move(update), base_delay + config_.flow_install_cost);
  }
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

void FabricManager::on_mcast_join(SwitchId sender, const McastJoin& m) {
  groups_[m.group].receivers[sender].insert(m.host_port);
  recompute_group(m.group, config_.fm_multicast_processing);
}

void FabricManager::on_mcast_leave(SwitchId sender, const McastLeave& m) {
  const auto git = groups_.find(m.group);
  if (git == groups_.end()) return;
  const auto rit = git->second.receivers.find(sender);
  if (rit != git->second.receivers.end()) {
    rit->second.erase(m.host_port);
    if (rit->second.empty()) git->second.receivers.erase(rit);
  }
  recompute_group(m.group, config_.fm_multicast_processing);
  if (git->second.empty()) groups_.erase(git);
}

void FabricManager::on_mcast_sender_seen(SwitchId sender,
                                         const McastSenderSeen& m) {
  auto& senders = groups_[m.group].senders;
  if (senders.insert(sender).second) {
    recompute_group(m.group, config_.fm_multicast_processing);
  }
}

void FabricManager::recompute_group(Ipv4Address group, SimDuration base_delay) {
  const auto git = groups_.find(group);
  std::optional<MulticastTree> fresh;
  if (git != groups_.end()) {
    fresh = compute_multicast_tree(graph_, group, git->second);
  }

  const auto old_it = installed_trees_.find(group);
  const MulticastTree* old =
      old_it == installed_trees_.end() ? nullptr : &old_it->second;
  if (old != nullptr && fresh.has_value() && *old == *fresh) return;

  // Remove entries from switches leaving the tree.
  SimDuration delay = base_delay;
  if (old != nullptr) {
    for (const auto& [sw, ports] : old->ports) {
      if (!fresh.has_value() || fresh->ports.count(sw) == 0) {
        send(sw, McastRemove{group}, delay);
        delay += config_.flow_install_cost;
      }
    }
  }
  // Install (or refresh) entries, one flow-mod at a time — the serialized
  // installation is what stretches multicast recovery past unicast's.
  if (fresh.has_value()) {
    for (const auto& [sw, ports] : fresh->ports) {
      McastInstall install;
      install.group = group;
      install.ports.assign(ports.begin(), ports.end());
      send(sw, std::move(install), delay);
      delay += config_.flow_install_cost;
    }
    installed_trees_[group] = std::move(*fresh);
    counters_.add("mcast_trees_installed");
  } else {
    installed_trees_.erase(group);
    counters_.add("mcast_trees_unavailable");
  }
}

void FabricManager::recompute_all_groups(SimDuration base_delay) {
  // Collect names first: recompute_group may erase empty groups.
  std::vector<Ipv4Address> names;
  names.reserve(groups_.size());
  for (const auto& [group, state] : groups_) names.push_back(group);
  for (const Ipv4Address g : names) recompute_group(g, base_delay);
}

std::optional<MulticastTree> FabricManager::installed_tree(
    Ipv4Address group) const {
  const auto it = installed_trees_.find(group);
  if (it == installed_trees_.end()) return std::nullopt;
  return it->second;
}

namespace {

void save_port_map(sim::SnapshotWriter& w,
                   const std::map<SwitchId, std::set<std::uint16_t>>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [id, ports] : m) {
    w.u64(id);
    w.u32(static_cast<std::uint32_t>(ports.size()));
    for (const std::uint16_t p : ports) w.u16(p);
  }
}

void restore_port_map(sim::SnapshotReader& r,
                      std::map<SwitchId, std::set<std::uint16_t>>& m) {
  m.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const SwitchId id = r.u64();
    std::set<std::uint16_t>& ports =
        m.emplace_hint(m.end(), id, std::set<std::uint16_t>{})->second;
    const std::uint32_t np = r.u32();
    for (std::uint32_t p = 0; p < np && r.ok(); ++p) {
      ports.emplace_hint(ports.end(), r.u16());
    }
  }
}

}  // namespace

void FabricManager::save_state(sim::SnapshotWriter& w) const {
  graph_.save_state(w);
  w.u16(next_pod_);
  w.u32(static_cast<std::uint32_t>(pod_by_requester_.size()));
  for (const auto& [id, pod] : pod_by_requester_) {
    w.u64(id);
    w.u16(pod);
  }
  w.u32(static_cast<std::uint32_t>(synced_switches_.size()));
  for (const SwitchId id : synced_switches_) w.u64(id);

  // hosts_ is unordered; sort by IP for a deterministic image.
  std::vector<std::pair<Ipv4Address, HostRecord>> hosts(hosts_.begin(),
                                                        hosts_.end());
  std::sort(hosts.begin(), hosts.end(), [](const auto& a, const auto& b) {
    return a.first.value() < b.first.value();
  });
  w.u32(static_cast<std::uint32_t>(hosts.size()));
  for (const auto& [ip, rec] : hosts) {
    w.u32(ip.value());
    w.u64(rec.pmac.to_u64());
    w.u64(rec.amac.to_u64());
    w.u64(rec.edge);
    w.u16(rec.edge_port);
  }

  w.u32(static_cast<std::uint32_t>(installed_prunes_.size()));
  for (const auto& [key, prunes] : installed_prunes_) {
    w.u16(key.pod);
    w.u8(key.position);
    w.u32(static_cast<std::uint32_t>(prunes.size()));
    for (const auto& [sw, avoid] : prunes) {
      w.u64(sw);
      w.u32(static_cast<std::uint32_t>(avoid.size()));
      for (const SwitchId a : avoid) w.u64(a);
    }
  }

  w.u32(static_cast<std::uint32_t>(groups_.size()));
  for (const auto& [group, state] : groups_) {
    w.u32(group.value());
    save_port_map(w, state.receivers);
    w.u32(static_cast<std::uint32_t>(state.senders.size()));
    for (const SwitchId s : state.senders) w.u64(s);
  }

  w.u32(static_cast<std::uint32_t>(installed_trees_.size()));
  for (const auto& [group, tree] : installed_trees_) {
    w.u32(group.value());
    w.u32(tree.group.value());
    w.u64(tree.core);
    save_port_map(w, tree.ports);
  }

  sim::save_counters(w, counters_);
}

void FabricManager::restore_state(sim::SnapshotReader& r) {
  graph_.restore_state(r);
  next_pod_ = r.u16();

  pod_by_requester_.clear();
  const std::uint32_t n_pods = r.u32();
  for (std::uint32_t i = 0; i < n_pods && r.ok(); ++i) {
    const SwitchId id = r.u64();
    pod_by_requester_.emplace_hint(pod_by_requester_.end(), id, r.u16());
  }

  synced_switches_.clear();
  const std::uint32_t n_synced = r.u32();
  for (std::uint32_t i = 0; i < n_synced && r.ok(); ++i) {
    synced_switches_.emplace_hint(synced_switches_.end(), r.u64());
  }

  hosts_.clear();
  const std::uint32_t n_hosts = r.u32();
  hosts_.reserve(n_hosts);
  for (std::uint32_t i = 0; i < n_hosts && r.ok(); ++i) {
    const Ipv4Address ip(r.u32());
    HostRecord rec;
    rec.pmac = MacAddress::from_u64(r.u64());
    rec.amac = MacAddress::from_u64(r.u64());
    rec.edge = r.u64();
    rec.edge_port = r.u16();
    hosts_.emplace(ip, rec);
  }

  installed_prunes_.clear();
  const std::uint32_t n_prunes = r.u32();
  for (std::uint32_t i = 0; i < n_prunes && r.ok(); ++i) {
    DstKey key;
    key.pod = r.u16();
    key.position = r.u8();
    PruneMap& prunes =
        installed_prunes_
            .emplace_hint(installed_prunes_.end(), key, PruneMap{})
            ->second;
    const std::uint32_t n_sw = r.u32();
    for (std::uint32_t s = 0; s < n_sw && r.ok(); ++s) {
      const SwitchId sw = r.u64();
      std::set<SwitchId>& avoid =
          prunes.emplace_hint(prunes.end(), sw, std::set<SwitchId>{})->second;
      const std::uint32_t n_avoid = r.u32();
      for (std::uint32_t a = 0; a < n_avoid && r.ok(); ++a) {
        avoid.emplace_hint(avoid.end(), r.u64());
      }
    }
  }

  groups_.clear();
  const std::uint32_t n_groups = r.u32();
  for (std::uint32_t i = 0; i < n_groups && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    GroupState& state = groups_[group];
    restore_port_map(r, state.receivers);
    const std::uint32_t n_senders = r.u32();
    for (std::uint32_t s = 0; s < n_senders && r.ok(); ++s) {
      state.senders.insert(r.u64());
    }
  }

  installed_trees_.clear();
  const std::uint32_t n_trees = r.u32();
  for (std::uint32_t i = 0; i < n_trees && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    MulticastTree& tree = installed_trees_[group];
    tree.group = Ipv4Address(r.u32());
    tree.core = r.u64();
    restore_port_map(r, tree.ports);
  }

  sim::restore_counters(r, counters_);
}

}  // namespace portland::core
