#include "core/locator.h"

#include "common/strings.h"

namespace portland::core {

const char* to_string(Level level) {
  switch (level) {
    case Level::kUnknown:
      return "unknown";
    case Level::kEdge:
      return "edge";
    case Level::kAggregation:
      return "agg";
    case Level::kCore:
      return "core";
  }
  return "?";
}

std::string SwitchLocator::to_string() const {
  return str_format("sw(%llu,%s,pod=%u,pos=%u)",
                    static_cast<unsigned long long>(switch_id),
                    portland::core::to_string(level), pod, position);
}

void SwitchLocator::serialize(ByteWriter& w) const {
  w.u64(switch_id);
  w.u8(static_cast<std::uint8_t>(level));
  w.u16(pod);
  w.u8(position);
}

SwitchLocator SwitchLocator::deserialize(ByteReader& r) {
  SwitchLocator loc;
  loc.switch_id = r.u64();
  loc.level = static_cast<Level>(r.u8());
  loc.pod = r.u16();
  loc.position = r.u8();
  return loc;
}

}  // namespace portland::core
