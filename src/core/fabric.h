// PortlandFabric: one-call construction of a complete PortLand deployment —
// a k-ary fat tree of PortlandSwitches, unmodified Hosts, the fabric
// manager, and the out-of-band control network — plus the convergence and
// failure-injection helpers every experiment uses.
//
// This is the library's main entry point:
//
//   core::PortlandFabric fabric({.k = 4, .seed = 42});
//   fabric.run_until_converged();
//   host::Host& a = fabric.host_at(0, 0, 0);
//   host::Host& b = fabric.host_at(3, 1, 1);
//   a.send_udp(b.ip(), 7000, 7001, payload);
//   fabric.sim().run_until(seconds(1));
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/control_plane.h"
#include "core/fabric_manager.h"
#include "core/portland_switch.h"
#include "host/host.h"
#include "obs/convergence_monitor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sim/failure.h"
#include "sim/network.h"
#include "sim/snapshot.h"
#include "topo/fat_tree.h"

namespace portland::core {

class PortlandFabric {
 public:
  struct Options {
    int k = 4;
    std::uint64_t seed = 1;
    PortlandConfig config;
    sim::Link::Config host_link;
    sim::Link::Config fabric_link;
    host::HostConfig host_config;
    /// Host indices (FatTree numbering) to leave unattached — their edge
    /// ports stay free, e.g. as VM-migration targets.
    std::set<std::size_t> skip_host_indices;
    /// Cores wired per group (1..k/2; 0 = full k/2). Values below k/2
    /// build an oversubscribed multi-rooted tree — fewer core uplinks per
    /// aggregation switch — which PortLand must handle identically (the
    /// paper targets general multi-rooted trees, not only pristine fat
    /// trees). With c cores/group the oversubscription ratio is (k/2)/c.
    std::size_t cores_per_group = 0;
    /// `workers = kAutoWorkers`: pick the engine automatically — serial
    /// on boxes with fewer than two hardware cores, otherwise one worker
    /// per shard capped at the core count (Simulator::resolve_auto_workers).
    static constexpr unsigned kAutoWorkers = ~0u;
    /// 0 (default): classic single-threaded engine, byte-for-byte the
    /// behavior every experiment has always had. >= 1: the sharded
    /// parallel engine — one shard per pod plus one for cores + fabric
    /// manager — driven by this many worker threads. Any worker count
    /// schedules the identical event sequence (see Simulator).
    /// kAutoWorkers resolves per the auto policy above.
    unsigned workers = 0;
    /// Burst/train event execution (Simulator::Options::burst): on by
    /// default, bit-identical to per-frame scheduling; off for A/B
    /// proofs and the E18 ablation.
    bool burst = true;
    /// Per-train entry cap, 0 = unbounded (E18 sweeps this).
    std::uint32_t max_train = 0;
    /// Adaptive per-shard lookahead windows (Simulator::Options).
    bool adaptive_lookahead = true;
    /// Pooled-window threshold (Simulator::Options::parallel_min_events);
    /// 0 forces every window through the worker pool.
    std::uint32_t parallel_min_events = 128;
    /// Event-queue implementation (see Simulator::Options): the default
    /// hierarchical timing wheel, or the classic binary heap for A/B
    /// determinism diffing. Both schedule the identical event sequence.
    sim::SchedulerKind scheduler = sim::SchedulerKind::kWheel;
    /// Observability. Everything here is passive: enabling any of it
    /// cannot change the event schedule (Soak pins this).
    struct ObsOptions {
      /// Attach a FlightRecorder to every device (per-hop frame tracing).
      bool flight_recorder = false;
      /// Per-shard cap on distinct traced frames; 0 = unlimited.
      std::uint64_t trace_frames = 0;
      /// Per-shard hop-ring capacity.
      std::size_t ring_capacity = 4096;
      /// Attach an EngineTracer (wall-clock window/dispatch profiling).
      bool engine_trace = false;
      /// Attach a ConvergenceMonitor (per-failure reaction timelines).
      /// Implies flight_recorder: the monitor derives blackhole windows
      /// from the recorder's hop/drop streams.
      bool convergence_monitor = false;
      /// Streaming loop-freedom checking inside the monitor (costs
      /// per-ingress table work; only meaningful with the monitor on).
      bool check_invariants = false;
    } obs;
  };

  explicit PortlandFabric(Options options);

  // --- plumbing ----------------------------------------------------------
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::Simulator& sim() { return net_.sim(); }
  [[nodiscard]] ControlPlane& control() { return *control_; }
  [[nodiscard]] FabricManager& fabric_manager() { return *fm_; }
  [[nodiscard]] const topo::FatTree& tree() const { return tree_; }
  [[nodiscard]] sim::FailureInjector& failures() { return injector_; }
  [[nodiscard]] const Options& options() const { return options_; }

  // --- topology accessors --------------------------------------------------
  /// Host by FatTree index; nullptr if the index was skipped.
  [[nodiscard]] host::Host* host(std::size_t index) const;
  [[nodiscard]] host::Host& host_at(std::size_t pod, std::size_t edge,
                                    std::size_t port) const;
  [[nodiscard]] PortlandSwitch& edge_at(std::size_t pod,
                                        std::size_t pos) const;
  [[nodiscard]] PortlandSwitch& agg_at(std::size_t pod, std::size_t pos) const;
  [[nodiscard]] PortlandSwitch& core_at(std::size_t group,
                                        std::size_t member) const;
  [[nodiscard]] const std::vector<PortlandSwitch*>& switches() const {
    return switches_;
  }
  /// All attached hosts (skipped indices excluded).
  [[nodiscard]] const std::vector<host::Host*>& hosts() const {
    return hosts_;
  }
  /// The access link of host `index`; nullptr if skipped.
  [[nodiscard]] sim::Link* host_link(std::size_t index) const;
  [[nodiscard]] const std::vector<sim::Link*>& fabric_links() const {
    return fabric_links_;
  }

  /// The deterministic IP plan: host at (pod, edge, port) owns
  /// 10.pod.edge.(port+1).
  [[nodiscard]] static Ipv4Address ip_at(std::size_t pod, std::size_t edge,
                                         std::size_t port);

  // --- lifecycle helpers ---------------------------------------------------
  /// Runs the simulation until every switch has discovered its full
  /// location (level, pod, position), then has every host announce itself
  /// so the fabric manager's PMAC registry is complete. Returns false if
  /// discovery did not converge within `limit`.
  bool run_until_converged(SimDuration limit = seconds(5));

  [[nodiscard]] bool all_located() const;

  /// Sum of forwarding-state entries across all switches (E5).
  [[nodiscard]] std::size_t total_switch_state() const;

  /// Sum of counted forwarding-table bytes across all switches (E19).
  [[nodiscard]] PortlandSwitch::TableBytes total_table_bytes() const;

  // --- observability -------------------------------------------------------
  /// The attached flight recorder, or nullptr when Options::obs left it off.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  /// The attached engine tracer, or nullptr.
  [[nodiscard]] obs::EngineTracer* engine_tracer() const {
    return tracer_.get();
  }
  /// The attached convergence monitor, or nullptr when Options::obs left
  /// it off.
  [[nodiscard]] obs::ConvergenceMonitor* convergence_monitor() const {
    return monitor_.get();
  }

  /// Captures one metrics snapshot (engine, parser, every device's
  /// counters, every link direction) into `registry` at the current sim
  /// time. Quiescent-only: call between run_until chunks, never from an
  /// event. Purely observational — drives no events, consumes no RNG.
  void snapshot_metrics(obs::MetricsRegistry& registry);

  // --- checkpoint/fork serving --------------------------------------------
  /// Serializes the complete simulation state — pending events, links,
  /// every device, the fabric manager, control plane, flight recorder —
  /// into `out`. Quiescent-only (between run_until chunks). Refuses
  /// (returns false, sets *error) if any pending event is a plain closure
  /// (barrier task / sim().after), since closures cannot serialize; a
  /// converged fabric between chunks has none. `extras` are app-level
  /// objects (traffic generators, scenario timers) appended to the image
  /// in span order.
  bool save_snapshot(std::vector<std::uint8_t>& out,
                     std::span<sim::Snapshotable* const> extras,
                     std::string* error = nullptr);
  bool save_snapshot(std::vector<std::uint8_t>& out,
                     std::string* error = nullptr) {
    return save_snapshot(out, {}, error);
  }

  /// Restores a save_snapshot image into this fabric. The fabric must
  /// have been constructed with the same k, seed, shard count, and
  /// topology options (host/link layout); scheduler, burst mode, and
  /// worker count may differ — the engine schedules the identical event
  /// sequence either way. Works both for in-memory forks (restore a
  /// warmed fabric back to the checkpoint) and fresh processes (construct
  /// the fabric, then restore; app callbacks installed by extras/hosts
  /// must be re-wired by the caller). `extras` must match the saving
  /// span's order.
  bool restore_snapshot(std::span<const std::uint8_t> image,
                        std::span<sim::Snapshotable* const> extras,
                        std::string* error = nullptr);
  bool restore_snapshot(std::span<const std::uint8_t> image,
                        std::string* error = nullptr) {
    return restore_snapshot(image, {}, error);
  }

 private:
  Options options_;
  topo::FatTree tree_;
  sim::Network net_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<FabricManager> fm_;

  std::vector<host::Host*> hosts_;                 // attached only
  std::vector<host::Host*> host_by_index_;         // nullptr where skipped
  std::vector<sim::Link*> host_link_by_index_;     // nullptr where skipped
  std::vector<PortlandSwitch*> edges_;
  std::vector<PortlandSwitch*> aggs_;
  std::vector<PortlandSwitch*> cores_;
  std::vector<PortlandSwitch*> switches_;
  std::vector<sim::Link*> fabric_links_;
  sim::FailureInjector injector_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::EngineTracer> tracer_;
  std::unique_ptr<obs::ConvergenceMonitor> monitor_;
};

}  // namespace portland::core
