// PathAuditor: empirical verification of §3.5's loop-freedom theorem.
//
// Using the simulator's frame tap, every UDP data packet is followed
// switch by switch through the fabric. For each delivered packet the
// auditor checks the paper's invariants *per packet*, not statistically:
//   * no switch is visited twice (no loops, ever);
//   * the level sequence is up-then-down (edge->agg->core->agg->edge with
//     no valley): once a packet starts descending it never ascends again;
//   * at most 5 switch hops (the fat-tree diameter).
// It also histograms switch-hop counts, giving the empirical path-length
// distribution of the fabric under any workload.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fabric.h"

namespace portland::core {

class PathAuditor {
 public:
  /// Installs the frame tap on the fabric's network. Only one auditor per
  /// fabric at a time.
  explicit PathAuditor(PortlandFabric& fabric);
  ~PathAuditor();
  PathAuditor(const PathAuditor&) = delete;
  PathAuditor& operator=(const PathAuditor&) = delete;

  /// Number of audited packets delivered to a host.
  [[nodiscard]] std::uint64_t packets_completed() const { return completed_; }

  /// Invariant violations found (empty = loop-freedom held for every
  /// observed packet).
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

  /// switch-hops -> completed packet count.
  [[nodiscard]] const std::map<std::size_t, std::uint64_t>& hop_histogram()
      const {
    return hops_;
  }

  /// Forgets any in-flight partial paths (e.g. after deliberate drops).
  void reset_in_flight() { in_flight_.clear(); }

 private:
  struct PacketKey {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint64_t seq = 0;

    friend bool operator<(const PacketKey& a, const PacketKey& b) {
      return std::tie(a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.seq) <
             std::tie(b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.seq);
    }
  };

  void on_delivery(const sim::Link& link, int rx_side,
                   const sim::FramePtr& frame);
  void finish(const PacketKey& key, std::vector<const PortlandSwitch*> path);

  PortlandFabric* fabric_;
  std::map<PacketKey, std::vector<const PortlandSwitch*>> in_flight_;
  std::map<std::size_t, std::uint64_t> hops_;
  std::vector<std::string> violations_;
  std::uint64_t completed_ = 0;
};

}  // namespace portland::core
