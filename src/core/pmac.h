// PMAC: PortLand's hierarchical Pseudo MAC address (paper §3.2).
//
// 48 bits laid out as pod(16) : position(8) : port(8) : vmid(16).
//   * pod       — the pod of the host's edge switch,
//   * position  — the edge switch's position within its pod,
//   * port      — the edge switch port the host hangs off,
//   * vmid      — multiplexes VMs on one physical port (assigned by the
//                 edge switch, starting at 1).
//
// PMACs encode location, so core/aggregation switches forward on prefixes
// of the address instead of flat per-host entries. Hosts never see PMACs
// except inside ARP replies; edge switches rewrite src AMAC->PMAC at
// ingress and dst PMAC->AMAC at egress.
//
// Distinguishing PMACs from AMACs: host AMACs in this codebase are
// generated with the locally-administered bit set (first octet 0x02), and
// pod numbers stay below 0x0200, so the address spaces cannot collide. The
// fabric never relies on guessing, though — edge switches know which side
// of the rewrite boundary a frame is on.
#pragma once

#include <cstdint>
#include <string>

#include "common/mac_address.h"

namespace portland::core {

struct Pmac {
  std::uint16_t pod = 0;
  std::uint8_t position = 0;
  std::uint8_t port = 0;
  std::uint16_t vmid = 0;

  [[nodiscard]] MacAddress to_mac() const {
    return MacAddress::from_u64(
        (static_cast<std::uint64_t>(pod) << 32) |
        (static_cast<std::uint64_t>(position) << 24) |
        (static_cast<std::uint64_t>(port) << 16) | vmid);
  }

  [[nodiscard]] static Pmac from_mac(MacAddress mac) {
    const std::uint64_t v = mac.to_u64();
    Pmac p;
    p.pod = static_cast<std::uint16_t>(v >> 32);
    p.position = static_cast<std::uint8_t>(v >> 24);
    p.port = static_cast<std::uint8_t>(v >> 16);
    p.vmid = static_cast<std::uint16_t>(v);
    return p;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Pmac&, const Pmac&) = default;
};

/// Generates a host AMAC (locally-administered, collision-free with PMACs):
/// 02:00:00 followed by a 24-bit host index.
[[nodiscard]] inline MacAddress make_amac(std::uint32_t host_index) {
  return MacAddress::from_u64(0x0200'0000'0000ULL | (host_index & 0xFFFFFF));
}

/// True when `mac` lies in the PMAC numbering space used by this fabric
/// (pod < 0x0200, i.e. first octet 0x00 or 0x01).
[[nodiscard]] inline bool looks_like_pmac(MacAddress mac) {
  return (mac.to_u64() >> 40) < 0x02 && !mac.is_zero();
}

/// Advances a per-port vmid counter: vmids start at 1 (vmid 0 means
/// "unassigned" in the PMAC encoding) and wrap 0xFFFF -> 1, never back
/// to 0.
[[nodiscard]] inline std::uint16_t next_vmid(std::uint16_t current) {
  return current >= 0xFFFF ? std::uint16_t{1}
                           : static_cast<std::uint16_t>(current + 1);
}

}  // namespace portland::core
