// The fabric manager (paper §3.1): a logically centralized controller
// holding *soft state* only — everything it knows is rebuilt from switch
// reports, so a restarted FM recovers without configuration.
//
// Responsibilities:
//   * pod-number allocation for LDP (§3.4),
//   * the IP -> PMAC registry behind proxy ARP (§3.3),
//   * the fault matrix and reroute (prune) dissemination to exactly the
//     affected switches (§3.6),
//   * multicast group state, rendezvous-tree computation and installation
//     (§3.6),
//   * VM-migration detection and old-edge invalidation (§3.7).
//
// Scale-out (E22): the IP -> PMAC registry is split across
// config.fm_shards independent soft-state shards, keyed by IP hash
// (fm_shard_of). With more than one shard each answers ArpQuery /
// HostRegister traffic at its own control-plane address
// (kFmShardIdBase + s), pinned by the fabric to its own simulator shard,
// so proxy-ARP service parallelizes under the PDES engine. Every other
// responsibility (topology, pods, prunes, multicast, migration) stays on
// the primary endpoint. With fm_shards == 1 the behavior and message
// flow are exactly the classic single-endpoint FM.
//
// Hot standby (config.fm_replica): the primary and every registry shard
// periodically stream dirty state sections to kFmReplicaId as FmDelta
// messages (serialized with the snapshot plumbing). failover_to_replica()
// rebuilds the new incarnation from the last streamed images, so the
// blackout is bounded by the sync interval instead of a full
// soft-state refresh period.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "common/stats.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "core/fabric_graph.h"
#include "core/fm_registry.h"
#include "core/messages.h"
#include "core/multicast.h"
#include "sim/simulator.h"

namespace portland::obs {
class ConvergenceMonitor;
}  // namespace portland::obs

namespace portland::core {

class FabricManager {
 public:
  struct HostRecord {
    MacAddress pmac;
    MacAddress amac;
    SwitchId edge = kInvalidSwitchId;
    std::uint16_t edge_port = 0;

    friend bool operator==(const HostRecord&, const HostRecord&) = default;
  };

  FabricManager(sim::Simulator& sim, ControlPlane& control,
                PortlandConfig config);

  /// The control-message entry point (registered at kFabricManagerId).
  /// Registry traffic (ArpQuery / HostRegister) arriving here is routed
  /// to the owning shard internally, so direct sends to the primary
  /// behave identically at any shard count.
  void handle_message(const ControlMessage& msg);

  /// Pre-sizes the host registry and the switch-keyed tables for the
  /// expected fabric (the boot-time gratuitous-ARP storm registers every
  /// host — and every switch hellos — in a tight burst).
  void reserve(std::size_t hosts, std::size_t switches) {
    for (RegistryShard& s : shards_) {
      s.hosts.reserve(hosts / shards_.size() + 1);
    }
    pod_by_requester_.reserve(switches);
    synced_switches_.reserve(switches);
  }

  // --- inspection (tests, benches) --------------------------------------
  [[nodiscard]] const FabricGraph& graph() const { return graph_; }
  [[nodiscard]] std::optional<HostRecord> host(Ipv4Address ip) const;
  [[nodiscard]] std::size_t host_count() const {
    std::size_t n = 0;
    for (const RegistryShard& s : shards_) n += s.hosts.size();
    return n;
  }
  [[nodiscard]] std::uint16_t pods_assigned() const { return next_pod_; }
  /// Merged counter view: the primary's counters plus every registry
  /// shard's, summed by name. Rebuilt per call; grab values, not the
  /// reference, across runs.
  [[nodiscard]] const CounterSet& counters() const;
  [[nodiscard]] std::size_t installed_prune_keys() const {
    return installed_prunes_.size();
  }
  [[nodiscard]] const std::map<Ipv4Address, GroupState>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::optional<MulticastTree> installed_tree(
      Ipv4Address group) const;

  // --- registry sharding -------------------------------------------------
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Registry shard owning `ip` under the current shard count.
  [[nodiscard]] std::size_t shard_of(Ipv4Address ip) const {
    return fm_shard_of(ip, shards_.size());
  }
  /// Per-shard counters (E22 reports the per-shard ArpQuery split).
  [[nodiscard]] const CounterSet& shard_counters(std::size_t s) const {
    return shards_[s].counters;
  }

  // --- benchmark fast paths (E6: ARP service throughput) ----------------
  /// Pure lookup, exactly the proxy-ARP hot path: one hash, one probe
  /// run over the owning shard's open-addressed index.
  [[nodiscard]] std::optional<MacAddress> lookup_pmac(Ipv4Address ip) const {
    const HostRecord* rec = shards_[shard_of(ip)].hosts.find(ip);
    if (rec == nullptr) return std::nullopt;
    return rec->pmac;
  }

  /// Registers a host mapping directly (bench setup, bypassing the wire).
  void register_host_direct(Ipv4Address ip, const HostRecord& record);

  /// Drops a host record (soft-state expiry; also used by tests to force
  /// the proxy-ARP miss/broadcast-fallback path).
  void forget_host(Ipv4Address ip) {
    RegistryShard& s = shards_[shard_of(ip)];
    if (s.hosts.erase(ip)) s.dirty = true;
  }

  /// Simulates an FM failover: every piece of soft state is wiped, as if a
  /// cold replica took over (paper §3.1). Recovery requires no
  /// configuration: topology returns with the next hellos, pod numbers are
  /// re-learned from switch locators, host mappings and multicast
  /// membership return with the edges' periodic refreshes, and the first
  /// hello from each switch carries a prune flush so no stale reroutes
  /// survive the old incarnation.
  void simulate_failover();

  /// Fails over to the hot standby: wipes like simulate_failover, then
  /// restores from the last FmDelta images streamed to kFmReplicaId.
  /// Only the dirty window since the last sync is lost; the periodic
  /// soft-state refreshes top that remainder up. Requires fm_replica.
  void failover_to_replica();

  /// Wires the replica delta stream: registry shard s ticks its sync
  /// timer on simulator shard `registry_shards[s]`, the primary's core
  /// section on `core_shard` (pass empty/kNoShard outside parallel runs).
  /// Call once after construction when config.fm_replica is on.
  void start_replica_sync(const std::vector<sim::ShardId>& registry_shards,
                          sim::ShardId core_shard);

  /// Sections held by the standby with a streamed image (tests).
  [[nodiscard]] std::size_t replica_sections_held() const {
    std::size_t n = 0;
    for (const ReplicaSection& s : replica_) n += s.version > 0 ? 1 : 0;
    return n;
  }

  /// Checkpoint: the complete soft state — topology view, pod allocations,
  /// host registry (every shard), installed prunes, multicast
  /// groups/trees, counters, and the standby's streamed images. The
  /// control-plane endpoint registration is construction wiring.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

  /// Attaches the convergence monitor (nullptr = off). The FM is not a
  /// Device, so the fabric tells it which shard its handlers run on (the
  /// core shard hosting the control-plane endpoint).
  void set_convergence_monitor(obs::ConvergenceMonitor* monitor,
                               std::uint32_t shard) {
    monitor_ = monitor;
    monitor_shard_ = shard;
  }

 private:
  /// One independent soft-state slice of the IP -> PMAC registry. Each
  /// runs its control handler (and replica sync timer) on its own
  /// simulator shard, so everything here — registry, counters, dirty
  /// flag — is touched only from that shard's context.
  struct RegistryShard {
    FmRegistry<HostRecord> hosts;
    CounterSet counters;
    std::uint64_t delta_version = 0;
    bool dirty = false;
    std::unique_ptr<sim::PeriodicTimer> sync_timer;
  };
  /// One streamed standby image: section 0 is the primary's core state,
  /// section 1 + s registry shard s. Written only by the kFmReplicaId
  /// handler (its own shard context).
  struct ReplicaSection {
    std::uint64_t version = 0;
    std::vector<std::uint8_t> image;
  };

  void handle_shard_message(std::size_t shard, const ControlMessage& msg);
  void on_replica_delta(const FmDelta& m);

  void on_hello(SwitchId sender, const SwitchHello& m);
  void on_pod_request(SwitchId sender);
  void on_host_register(SwitchId sender, const HostRegister& m,
                        std::size_t shard);
  void on_arp_query(SwitchId sender, const ArpQuery& m, std::size_t shard);
  void on_fault_notify(SwitchId sender, const FaultNotify& m);
  void on_mcast_join(SwitchId sender, const McastJoin& m);
  void on_mcast_leave(SwitchId sender, const McastLeave& m);
  void on_mcast_sender_seen(SwitchId sender, const McastSenderSeen& m);

  /// Recomputes prunes for `event_keys` plus every key already installed
  /// (compound faults interact), diffs against installed state, and pushes
  /// deltas to the affected switches.
  void recompute_prunes(const std::vector<DstKey>& event_keys,
                        SimDuration base_delay);

  /// Recomputes one group's tree and (re)installs the diff.
  void recompute_group(Ipv4Address group, SimDuration base_delay);

  /// Recomputes every group (after topology changes).
  void recompute_all_groups(SimDuration base_delay);

  void send(SwitchId to, ControlBody body, SimDuration extra = 0);

  /// Everything the primary owns except the registry shards and counters
  /// (replica section 0 and the head of the snapshot image).
  void save_core_state(sim::SnapshotWriter& w) const;
  void restore_core_state(sim::SnapshotReader& r);
  void save_registry(sim::SnapshotWriter& w, const RegistryShard& s) const;
  void restore_registry(sim::SnapshotReader& r);

  void sync_core_section();
  void sync_shard_section(std::size_t shard);
  void wipe_soft_state();

  sim::Simulator* sim_;
  ControlPlane* control_;
  PortlandConfig config_;

  FabricGraph graph_;

  std::uint16_t next_pod_ = 0;
  /// Flat sorted-by-id vectors (reserved up front in reserve()): the
  /// boot-time hello storm touches these once per switch, and a sorted
  /// vector keeps both the no-allocation registration path and the
  /// ascending iteration order the snapshot layout relies on.
  std::vector<std::pair<SwitchId, std::uint16_t>> pod_by_requester_;
  /// Switches that have hello'd this FM incarnation (and therefore had
  /// their prune state flushed/re-synced). Sorted by id.
  std::vector<SwitchId> synced_switches_;

  std::vector<RegistryShard> shards_;  // size >= 1

  /// Currently installed prune state, per destination key.
  std::map<DstKey, PruneMap> installed_prunes_;

  std::map<Ipv4Address, GroupState> groups_;
  std::map<Ipv4Address, MulticastTree> installed_trees_;

  CounterSet counters_;
  mutable CounterSet merged_counters_;

  // Hot-standby state (present only when config.fm_replica).
  std::vector<ReplicaSection> replica_;  // 1 + shard count sections
  std::uint64_t core_version_ = 0;
  bool core_dirty_ = false;
  std::unique_ptr<sim::PeriodicTimer> core_sync_timer_;

  obs::ConvergenceMonitor* monitor_ = nullptr;
  std::uint32_t monitor_shard_ = 0;
};

}  // namespace portland::core
