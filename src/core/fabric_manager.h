// The fabric manager (paper §3.1): a logically centralized controller
// holding *soft state* only — everything it knows is rebuilt from switch
// reports, so a restarted FM recovers without configuration.
//
// Responsibilities:
//   * pod-number allocation for LDP (§3.4),
//   * the IP -> PMAC registry behind proxy ARP (§3.3),
//   * the fault matrix and reroute (prune) dissemination to exactly the
//     affected switches (§3.6),
//   * multicast group state, rendezvous-tree computation and installation
//     (§3.6),
//   * VM-migration detection and old-edge invalidation (§3.7).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "common/stats.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "core/fabric_graph.h"
#include "core/messages.h"
#include "core/multicast.h"
#include "sim/simulator.h"

namespace portland::obs {
class ConvergenceMonitor;
}  // namespace portland::obs

namespace portland::core {

class FabricManager {
 public:
  struct HostRecord {
    MacAddress pmac;
    MacAddress amac;
    SwitchId edge = kInvalidSwitchId;
    std::uint16_t edge_port = 0;
  };

  FabricManager(sim::Simulator& sim, ControlPlane& control,
                PortlandConfig config);

  /// The control-message entry point (registered at kFabricManagerId).
  void handle_message(const ControlMessage& msg);

  /// Pre-sizes the host registry for the expected fabric (the boot-time
  /// gratuitous-ARP storm registers every host in a tight burst).
  void reserve(std::size_t hosts, std::size_t switches) {
    hosts_.reserve(hosts);
    (void)switches;  // the switch-keyed tables are ordered maps
  }

  // --- inspection (tests, benches) --------------------------------------
  [[nodiscard]] const FabricGraph& graph() const { return graph_; }
  [[nodiscard]] std::optional<HostRecord> host(Ipv4Address ip) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::uint16_t pods_assigned() const { return next_pod_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  [[nodiscard]] std::size_t installed_prune_keys() const {
    return installed_prunes_.size();
  }
  [[nodiscard]] const std::map<Ipv4Address, GroupState>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::optional<MulticastTree> installed_tree(
      Ipv4Address group) const;

  // --- benchmark fast paths (E6: ARP service throughput) ----------------
  /// Pure lookup, exactly the proxy-ARP hot path.
  [[nodiscard]] std::optional<MacAddress> lookup_pmac(Ipv4Address ip) const;

  /// Registers a host mapping directly (bench setup, bypassing the wire).
  void register_host_direct(Ipv4Address ip, const HostRecord& record);

  /// Drops a host record (soft-state expiry; also used by tests to force
  /// the proxy-ARP miss/broadcast-fallback path).
  void forget_host(Ipv4Address ip) { hosts_.erase(ip); }

  /// Simulates an FM failover: every piece of soft state is wiped, as if a
  /// cold replica took over (paper §3.1). Recovery requires no
  /// configuration: topology returns with the next hellos, pod numbers are
  /// re-learned from switch locators, host mappings and multicast
  /// membership return with the edges' periodic refreshes, and the first
  /// hello from each switch carries a prune flush so no stale reroutes
  /// survive the old incarnation.
  void simulate_failover();

  /// Checkpoint: the complete soft state — topology view, pod allocations,
  /// host registry, installed prunes, multicast groups/trees, counters.
  /// The control-plane endpoint registration is construction wiring.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

  /// Attaches the convergence monitor (nullptr = off). The FM is not a
  /// Device, so the fabric tells it which shard its handlers run on (the
  /// core shard hosting the control-plane endpoint).
  void set_convergence_monitor(obs::ConvergenceMonitor* monitor,
                               std::uint32_t shard) {
    monitor_ = monitor;
    monitor_shard_ = shard;
  }

 private:
  void on_hello(SwitchId sender, const SwitchHello& m);
  void on_pod_request(SwitchId sender);
  void on_host_register(SwitchId sender, const HostRegister& m);
  void on_arp_query(SwitchId sender, const ArpQuery& m);
  void on_fault_notify(SwitchId sender, const FaultNotify& m);
  void on_mcast_join(SwitchId sender, const McastJoin& m);
  void on_mcast_leave(SwitchId sender, const McastLeave& m);
  void on_mcast_sender_seen(SwitchId sender, const McastSenderSeen& m);

  /// Recomputes prunes for `event_keys` plus every key already installed
  /// (compound faults interact), diffs against installed state, and pushes
  /// deltas to the affected switches.
  void recompute_prunes(const std::vector<DstKey>& event_keys,
                        SimDuration base_delay);

  /// Recomputes one group's tree and (re)installs the diff.
  void recompute_group(Ipv4Address group, SimDuration base_delay);

  /// Recomputes every group (after topology changes).
  void recompute_all_groups(SimDuration base_delay);

  void send(SwitchId to, ControlBody body, SimDuration extra = 0);

  sim::Simulator* sim_;
  ControlPlane* control_;
  PortlandConfig config_;

  FabricGraph graph_;

  std::uint16_t next_pod_ = 0;
  std::map<SwitchId, std::uint16_t> pod_by_requester_;
  /// Switches that have hello'd this FM incarnation (and therefore had
  /// their prune state flushed/re-synced).
  std::set<SwitchId> synced_switches_;

  std::unordered_map<Ipv4Address, HostRecord> hosts_;

  /// Currently installed prune state, per destination key.
  std::map<DstKey, PruneMap> installed_prunes_;

  std::map<Ipv4Address, GroupState> groups_;
  std::map<Ipv4Address, MulticastTree> installed_trees_;

  CounterSet counters_;

  obs::ConvergenceMonitor* monitor_ = nullptr;
  std::uint32_t monitor_shard_ = 0;
};

}  // namespace portland::core
