#include "core/fabric.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/rss.h"
#include "common/strings.h"
#include "core/pmac.h"

namespace portland::core {

namespace {
/// Switch ids start well above kFabricManagerId.
constexpr SwitchId kSwitchIdBase = 0x1000;
}  // namespace

Ipv4Address PortlandFabric::ip_at(std::size_t pod, std::size_t edge,
                                  std::size_t port) {
  assert(pod < 256 && edge < 256 && port < 255);
  return Ipv4Address(10, static_cast<std::uint8_t>(pod),
                     static_cast<std::uint8_t>(edge),
                     static_cast<std::uint8_t>(port + 1));
}

PortlandFabric::PortlandFabric(Options options)
    : options_(std::move(options)),
      tree_(options_.k),
      net_(options_.seed,
           {options_.scheduler, options_.burst, options_.max_train,
            options_.adaptive_lookahead, options_.parallel_min_events}),
      injector_(net_) {
  if (options_.workers == Options::kAutoWorkers) {
    // workers=auto: serial unless the box and the fabric can both feed a
    // pool (Simulator::resolve_auto_workers); the engine additionally
    // runs sparse windows inline at runtime, so even a resolved pool
    // never loses to serial on light phases.
    options_.workers = sim::Simulator::resolve_auto_workers(
        std::thread::hardware_concurrency(), tree_.shard_count());
  }
  if (options_.workers >= 1) {
    // Conservative lookahead: no cross-shard effect (frame over an
    // agg<->core or host access link, control-plane message) can land
    // sooner than the smallest of these latencies, so windows this wide
    // are race-free and the merge order is well-defined.
    const SimDuration lookahead =
        std::min({options_.host_link.propagation,
                  options_.fabric_link.propagation,
                  options_.config.control_latency});
    net_.sim().configure_shards(tree_.shard_count(), lookahead,
                                options_.seed);
    net_.sim().set_workers(options_.workers);
  }

  // The convergence monitor derives per-flow blackhole windows from the
  // flight recorder's hop/drop streams, so asking for it implies tracing.
  if (options_.obs.convergence_monitor) options_.obs.flight_recorder = true;
  if (options_.obs.flight_recorder) {
    obs::FlightRecorder::Options ro;
    ro.ring_capacity = options_.obs.ring_capacity;
    ro.max_traced_frames = options_.obs.trace_frames;
    // LDP keepalives dominate frame counts but carry no tenant traffic;
    // keep them out of traces so rings hold the interesting hops.
    ro.skip_ethertype = net::to_u16(net::EtherType::kLdp);
    // Sized for every shard even in classic mode: devices carry their
    // shard assignment either way, so records always land in range.
    recorder_ =
        std::make_unique<obs::FlightRecorder>(tree_.shard_count(), ro);
    net_.set_flight_recorder(recorder_.get());
  }
  if (options_.obs.engine_trace) {
    tracer_ = std::make_unique<obs::EngineTracer>(tree_.shard_count());
    net_.sim().set_tracer(tracer_.get());
  }
  if (options_.obs.convergence_monitor) {
    obs::ConvergenceMonitor::Options mo;
    mo.check_invariants = options_.obs.check_invariants;
    monitor_ = std::make_unique<obs::ConvergenceMonitor>(
        tree_.shard_count(), mo);
    net_.set_convergence_monitor(monitor_.get());
  }

  control_ = std::make_unique<ControlPlane>(net_.sim(),
                                            options_.config.control_latency);
  // fm_shards == 0 means auto: one registry shard per pod, the same
  // decomposition the PDES engine already uses.
  if (options_.config.fm_shards == 0) {
    options_.config.fm_shards = tree_.pods();
  }
  const std::size_t fm_shards =
      std::max<std::size_t>(1, options_.config.fm_shards);
  fm_ = std::make_unique<FabricManager>(net_.sim(), *control_,
                                        options_.config);
  // The fabric manager handles its messages on the core shard.
  control_->set_endpoint_shard(kFabricManagerId, tree_.core_shard());
  // Registry shards are pinned round-robin across the pod shards, so ARP
  // service runs in parallel with the data plane instead of serializing
  // on the core shard.
  if (fm_shards > 1) {
    for (std::size_t s = 0; s < fm_shards; ++s) {
      control_->set_endpoint_shard(
          static_cast<SwitchId>(kFmShardIdBase + s),
          static_cast<sim::ShardId>(s % tree_.pods()));
    }
  }
  if (options_.config.fm_replica) {
    control_->set_endpoint_shard(kFmReplicaId, tree_.core_shard());
    std::vector<sim::ShardId> registry_shards(fm_shards, tree_.core_shard());
    if (fm_shards > 1) {
      for (std::size_t s = 0; s < fm_shards; ++s) {
        registry_shards[s] = static_cast<sim::ShardId>(s % tree_.pods());
      }
    }
    fm_->start_replica_sync(registry_shards, tree_.core_shard());
  }
  if (monitor_ != nullptr) {
    fm_->set_convergence_monitor(
        monitor_.get(), static_cast<std::uint32_t>(tree_.core_shard()));
  }

  const std::size_t half = static_cast<std::size_t>(options_.k) / 2;
  const std::size_t cores_per_group =
      options_.cores_per_group == 0
          ? half
          : std::min(options_.cores_per_group, half);
  Rng rng = net_.rng().fork();
  SwitchId next_id = kSwitchIdBase;

  // Bulk reservation (E19): size the device/link vectors, the name index,
  // and one contiguous arena chunk for the whole topology up front, so a
  // k=64 build never reallocates mid-construction.
  const std::size_t n_switches =
      tree_.num_edge() + tree_.num_agg() + half * cores_per_group;
  const std::size_t n_hosts =
      tree_.num_hosts() - options_.skip_host_indices.size();
  const std::size_t n_links = n_hosts + tree_.pods() * half * half +
                              tree_.pods() * half * cores_per_group;
  net_.reserve(n_switches + n_hosts, n_links,
               n_switches * (sizeof(PortlandSwitch) + 64) +
                   n_hosts * (sizeof(host::Host) + 64) +
                   n_links * (sizeof(sim::Link) + 64));
  edges_.reserve(tree_.num_edge());
  aggs_.reserve(tree_.num_agg());
  cores_.reserve(half * cores_per_group);
  hosts_.reserve(n_hosts);
  fabric_links_.reserve(n_links - n_hosts);
  fm_->reserve(n_hosts, n_switches);
  control_->reserve(n_switches + 2 + fm_shards);

  // Switches, in FatTree order: edge, agg, core. Each is pinned to its
  // pod's event shard (cores to the shared core shard) and the control
  // plane learns where to deliver its messages.
  auto make_switch = [&](const std::string& name,
                         sim::ShardId shard) -> PortlandSwitch& {
    PortlandSwitch& sw = net_.add_device<PortlandSwitch>(
        name, next_id++, static_cast<std::size_t>(options_.k), *control_,
        options_.config, rng.fork());
    sw.set_shard(shard);
    control_->set_endpoint_shard(sw.id(), shard);
    return sw;
  };
  for (std::size_t pod = 0; pod < tree_.pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      edges_.push_back(&make_switch(str_format("edge-p%zu-%zu", pod, e),
                                    static_cast<sim::ShardId>(pod)));
    }
  }
  for (std::size_t pod = 0; pod < tree_.pods(); ++pod) {
    for (std::size_t a = 0; a < half; ++a) {
      aggs_.push_back(&make_switch(str_format("agg-p%zu-%zu", pod, a),
                                   static_cast<sim::ShardId>(pod)));
    }
  }
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; j < cores_per_group; ++j) {
      cores_.push_back(&make_switch(str_format("core-%zu-%zu", i, j),
                                    tree_.core_shard()));
    }
  }
  switches_.reserve(edges_.size() + aggs_.size() + cores_.size());
  switches_ = edges_;
  switches_.insert(switches_.end(), aggs_.begin(), aggs_.end());
  switches_.insert(switches_.end(), cores_.begin(), cores_.end());

  // Hosts (except skipped indices) and their access links.
  host_by_index_.assign(tree_.num_hosts(), nullptr);
  host_link_by_index_.assign(tree_.num_hosts(), nullptr);
  std::uint32_t host_counter = 0;
  for (std::size_t pod = 0; pod < tree_.pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t p = 0; p < half; ++p) {
        const std::size_t index = tree_.host_index(pod, e, p);
        ++host_counter;
        if (options_.skip_host_indices.count(index) != 0) continue;
        host::Host& h = net_.add_device<host::Host>(
            str_format("host-p%zu-e%zu-h%zu", pod, e, p),
            make_amac(host_counter), ip_at(pod, e, p), options_.host_config);
        h.set_shard(static_cast<sim::ShardId>(pod));
        host_by_index_[index] = &h;
        hosts_.push_back(&h);
        sim::Link& link =
            net_.connect(h, 0, *edges_[pod * half + e], p, options_.host_link);
        host_link_by_index_[index] = &link;
      }
    }
  }

  // Edge <-> aggregation.
  for (std::size_t pod = 0; pod < tree_.pods(); ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        fabric_links_.push_back(&net_.connect(
            *edges_[pod * half + e], half + a, *aggs_[pod * half + a], e,
            options_.fabric_link));
      }
    }
  }
  // Aggregation <-> core. With oversubscription, aggregation uplink ports
  // beyond cores_per_group stay unwired — LDP simply never finds a
  // neighbor there.
  for (std::size_t pod = 0; pod < tree_.pods(); ++pod) {
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t j = 0; j < cores_per_group; ++j) {
        fabric_links_.push_back(
            &net_.connect(*aggs_[pod * half + a], half + j,
                          *cores_[a * cores_per_group + j], pod,
                          options_.fabric_link));
      }
    }
  }

  net_.start_all();
}

host::Host* PortlandFabric::host(std::size_t index) const {
  assert(index < host_by_index_.size());
  return host_by_index_[index];
}

host::Host& PortlandFabric::host_at(std::size_t pod, std::size_t edge,
                                    std::size_t port) const {
  host::Host* h = host(tree_.host_index(pod, edge, port));
  assert(h != nullptr && "host index was skipped");
  return *h;
}

PortlandSwitch& PortlandFabric::edge_at(std::size_t pod,
                                        std::size_t pos) const {
  const std::size_t half = static_cast<std::size_t>(options_.k) / 2;
  return *edges_[pod * half + pos];
}

PortlandSwitch& PortlandFabric::agg_at(std::size_t pod,
                                       std::size_t pos) const {
  const std::size_t half = static_cast<std::size_t>(options_.k) / 2;
  return *aggs_[pod * half + pos];
}

PortlandSwitch& PortlandFabric::core_at(std::size_t group,
                                        std::size_t member) const {
  const std::size_t half = static_cast<std::size_t>(options_.k) / 2;
  const std::size_t per_group = options_.cores_per_group == 0
                                    ? half
                                    : std::min(options_.cores_per_group, half);
  return *cores_[group * per_group + member];
}

sim::Link* PortlandFabric::host_link(std::size_t index) const {
  assert(index < host_link_by_index_.size());
  return host_link_by_index_[index];
}

bool PortlandFabric::all_located() const {
  for (const PortlandSwitch* sw : switches_) {
    if (!sw->locator().located()) return false;
  }
  return true;
}

bool PortlandFabric::run_until_converged(SimDuration limit) {
  const SimTime deadline = sim().now() + limit;
  while (!all_located()) {
    if (sim().now() >= deadline) return false;
    sim().run_until(sim().now() + millis(10));
  }
  // Location discovery is done; re-announce every host so each edge
  // assigns PMACs and the fabric manager's registry becomes complete
  // (the boot-time gratuitous ARPs may have preceded discovery). Each
  // announcement transmits from the host's own shard.
  for (host::Host* h : hosts_) {
    sim::ShardGuard guard(sim(), h->shard());
    h->send_gratuitous_arp();
  }
  sim().run_until(sim().now() + millis(20));
  return true;
}

std::size_t PortlandFabric::total_switch_state() const {
  std::size_t n = 0;
  for (const PortlandSwitch* sw : switches_) n += sw->forwarding_state_size();
  return n;
}

PortlandSwitch::TableBytes PortlandFabric::total_table_bytes() const {
  PortlandSwitch::TableBytes total;
  for (const PortlandSwitch* sw : switches_) {
    const PortlandSwitch::TableBytes b = sw->table_bytes();
    total.host_table += b.host_table;
    total.fib += b.fib;
    total.flow_cache += b.flow_cache;
    total.prunes += b.prunes;
    total.multicast += b.multicast;
    total.other += b.other;
  }
  return total;
}

namespace {
/// Image header magic: "PLFS" (PortLand Fabric Snapshot).
constexpr std::uint32_t kSnapshotMagic = 0x504C4653;
constexpr std::uint32_t kSnapshotVersion = 3;
}  // namespace

bool PortlandFabric::save_snapshot(std::vector<std::uint8_t>& out,
                                   std::span<sim::Snapshotable* const> extras,
                                   std::string* error) {
  sim::SnapshotWriter w(out);
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(options_.k));
  w.u64(options_.seed);
  w.u32(static_cast<std::uint32_t>(tree_.shard_count()));
  w.u32(static_cast<std::uint32_t>(net_.devices().size()));
  w.u32(static_cast<std::uint32_t>(net_.links().size()));
  w.u32(static_cast<std::uint32_t>(extras.size()));

  // 1. Engine: pending events in (time, seq) order. Refuses on plain
  //    closures — nothing else in this walk can fail.
  if (!sim().save_engine(w, error)) return false;

  // 2. Links (network construction order): queue occupancy, in-flight
  //    trains, epochs, down state.
  for (sim::Link* link : net_.links()) link->save_state(w);

  // 3. Devices (construction order): generic counters, then the device's
  //    own state (tables, FIBs, protocol timers, TCP stacks, ...).
  for (sim::Device* dev : net_.devices()) {
    sim::save_counters(w, dev->counters());
    dev->save_state(w);
  }

  // 4. Central services + observability.
  fm_->save_state(w);
  control_->save_state(w);
  w.u8(recorder_ != nullptr ? 1 : 0);
  if (recorder_ != nullptr) recorder_->save_state(w);

  // 5. App-level extras, in caller order.
  for (sim::Snapshotable* s : extras) s->save_state(w);
  return true;
}

bool PortlandFabric::restore_snapshot(std::span<const std::uint8_t> image,
                                      std::span<sim::Snapshotable* const>
                                          extras,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  sim::SnapshotReader r(image);
  if (r.u32() != kSnapshotMagic) return fail("snapshot: bad magic");
  if (r.u32() != kSnapshotVersion) return fail("snapshot: version mismatch");
  if (r.u32() != static_cast<std::uint32_t>(options_.k)) {
    return fail("snapshot: fabric k mismatch");
  }
  if (r.u64() != options_.seed) return fail("snapshot: seed mismatch");
  if (r.u32() != static_cast<std::uint32_t>(tree_.shard_count())) {
    return fail("snapshot: shard count mismatch");
  }
  if (r.u32() != static_cast<std::uint32_t>(net_.devices().size())) {
    return fail("snapshot: device count mismatch");
  }
  if (r.u32() != static_cast<std::uint32_t>(net_.links().size())) {
    return fail("snapshot: link count mismatch");
  }
  if (r.u32() != static_cast<std::uint32_t>(extras.size())) {
    return fail("snapshot: extras count mismatch");
  }
  if (!r.ok()) return fail("snapshot: truncated header");

  // Drop whatever this fabric is currently doing; the image replaces it.
  const auto tprint = [](const char* what, auto& t0) {
    if (std::getenv("PORTLAND_SNAPSHOT_TIMING") == nullptr) return;
    const auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "  [restore] %-10s %7.2f ms\n", what,
                 std::chrono::duration<double, std::milli>(t1 - t0).count());
    t0 = t1;
  };
  auto t0 = std::chrono::steady_clock::now();
  sim().snapshot_clear();
  tprint("clear", t0);
  if (!sim().restore_engine(r, error)) return false;
  tprint("engine", t0);

  for (sim::Link* link : net_.links()) link->restore_state(r);
  tprint("links", t0);

  for (sim::Device* dev : net_.devices()) {
    // Device restores run as the owning shard: re-armed timers and
    // re-anchored state must land in that shard's queues.
    sim::ShardGuard guard(sim(), dev->shard());
    sim::restore_counters(r, dev->counters());
    dev->restore_state(r);
  }
  tprint("devices", t0);

  fm_->restore_state(r);
  tprint("fm", t0);
  control_->restore_state(r);
  const bool had_recorder = r.u8() != 0;
  if (had_recorder && recorder_ != nullptr) {
    recorder_->restore_state(r);
  } else if (had_recorder && recorder_ == nullptr) {
    // Image traced, this fabric doesn't: skip the section by replaying it
    // into a throwaway recorder of the right shape.
    obs::FlightRecorder scratch(tree_.shard_count(), {});
    scratch.restore_state(r);
  } else if (!had_recorder && recorder_ != nullptr) {
    recorder_->clear();
  }
  // Timelines never cross a fork: the monitor is passive state derived
  // from one run's event stream, so a restore starts it fresh (mirrors
  // the recorder's ring semantics).
  if (monitor_ != nullptr) monitor_->clear();

  for (sim::Snapshotable* s : extras) s->restore_state(r);

  if (!r.ok()) return fail("snapshot: image truncated or corrupt");
  return sim().finish_restore(error);
}

void PortlandFabric::snapshot_metrics(obs::MetricsRegistry& registry) {
  sim::Simulator& s = sim();
  obs::MetricsSnapshot& snap = registry.begin_snapshot(s.now());

  snap.engine.executed = s.executed_events();
  snap.engine.windows = s.windows_executed();
  snap.engine.mail_merged = s.mail_merged();
  snap.engine.barrier_tasks = s.barrier_tasks_executed();
  snap.engine.pending = s.pending_events();
  snap.engine.trains_popped = s.trains_popped();
  snap.engine.train_frames = s.train_frames();
  snap.engine.train_repushes = s.train_repushes();
  snap.engine.nodes_pushed = s.nodes_pushed();
  snap.engine.windows_inline = s.windows_inline();
  snap.engine.windows_widened = s.windows_widened();
  snap.engine.per_shard_executed.reserve(s.shard_count());
  for (sim::ShardId sh = 0; sh < s.shard_count(); ++sh) {
    snap.engine.per_shard_executed.push_back(s.shard_executed(sh));
  }
  const sim::TimingWheel::Stats wheel = s.wheel_stats();
  snap.engine.wheel_inserts = wheel.inserts;
  snap.engine.wheel_erases = wheel.erases;
  snap.engine.wheel_cascaded = wheel.cascaded_nodes;
  snap.engine.wheel_overflow_rehomed = wheel.overflow_rehomed;

  const net::ParseStats parse = net::parse_stats();
  snap.parse.parse_calls = parse.parse_calls;
  snap.parse.meta_hits = parse.meta_hits;
  snap.parse.meta_attaches = parse.meta_attaches;
  snap.parse.rewrite_copies = parse.rewrite_copies;

  const PortlandSwitch::TableBytes tables = total_table_bytes();
  snap.memory.switch_table_bytes = tables.total();
  snap.memory.host_table_bytes = tables.host_table;
  snap.memory.fib_bytes = tables.fib;
  snap.memory.flow_cache_bytes = tables.flow_cache;
  snap.memory.arena_bytes = net_.arena().bytes_reserved();
  snap.memory.rss_bytes = current_rss_bytes();

  snap.devices.reserve(net_.devices().size());
  for (const auto& dev : net_.devices()) {
    obs::DeviceSample& d = snap.devices.emplace_back();
    d.name = dev->name();
    const auto& counters = dev->counters().all();
    d.counters.assign(counters.begin(), counters.end());
  }

  snap.links.reserve(net_.links().size() * 2);
  for (const auto& link : net_.links()) {
    for (int side = 0; side < 2; ++side) {
      obs::LinkSample& l = snap.links.emplace_back();
      l.name = link->device(side).name() + "->" +
               link->device(1 - side).name();
      l.up = link->direction_up(side);
      l.tx_frames = link->tx_frames(side);
      l.tx_bytes = link->tx_bytes(side);
      l.dropped = link->dropped_frames(side);
      l.queue_bytes = link->queued_bytes_now(side);
    }
  }
}

}  // namespace portland::core
