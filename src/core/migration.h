// VM migration orchestration (paper §3.7).
//
// Simulates live migration of a VM (a Host device) between edge-switch
// ports: the old access link is torn down, the VM is dark for the
// `downtime`, then it re-attaches at the target port and emits a
// gratuitous ARP. Everything after that is the fabric's job: the new edge
// assigns a fresh PMAC and registers it, the fabric manager detects the
// move and invalidates the old edge, and the old edge traps in-flight
// frames, rewrites them to the new PMAC, and corrects senders' stale ARP
// caches with unicast gratuitous ARPs.
#pragma once

#include "core/fabric.h"

namespace portland::core {

class MigrationController {
 public:
  explicit MigrationController(PortlandFabric& fabric) : fabric_(&fabric) {}

  struct Plan {
    /// FatTree index of the VM to move (must be attached).
    std::size_t vm_host_index = 0;
    /// Target edge switch coordinates and host-facing port (must be free).
    std::size_t to_pod = 0;
    std::size_t to_edge = 0;
    sim::PortId to_port = 0;
    /// When the migration starts (link down at the source).
    SimTime start = 0;
    /// Blackout between detach and re-attach + gratuitous ARP.
    SimDuration downtime = millis(200);
  };

  /// Schedules the migration. The VM keeps its IP and AMAC (R1).
  void schedule(const Plan& plan);

  [[nodiscard]] std::size_t migrations_started() const { return started_; }
  [[nodiscard]] std::size_t migrations_finished() const { return finished_; }

 private:
  PortlandFabric* fabric_;
  std::size_t started_ = 0;
  std::size_t finished_ = 0;
};

}  // namespace portland::core
