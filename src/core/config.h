// Tunables for the PortLand fabric. Defaults follow the paper's testbed:
// LDM period 10 ms, failure declared after 5 missed LDMs (50 ms).
#pragma once

#include <cstddef>

#include "common/units.h"

namespace portland::core {

struct PortlandConfig {
  // --- Location Discovery Protocol (paper §3.4 / §4) ---
  /// Period between Location Discovery Messages on every switch port.
  SimDuration ldm_period = millis(10);
  /// A switch port with no LDM for this long is declared failed.
  SimDuration neighbor_timeout = millis(50);
  /// Retry interval for position proposals awaiting aggregation acks.
  SimDuration position_retry = millis(15);
  /// Retry interval for pod-number requests to the fabric manager.
  SimDuration pod_request_retry = millis(20);

  /// Periodic SwitchHello (locator + neighbor table) interval.
  SimDuration hello_interval = seconds(1);
  /// Batch delay between a local state change and the triggered hello.
  SimDuration hello_batch_delay = millis(1);
  /// Edge switches re-register their hosts with the fabric manager at
  /// this period. The FM holds soft state only (paper §3.1): after an FM
  /// failover the replica rebuilds its PMAC registry from these refreshes
  /// and its topology from hellos, with zero configuration.
  SimDuration host_reregister_interval = seconds(1);

  // --- control network (switches <-> fabric manager) ---
  /// One-way latency of the out-of-band control network.
  SimDuration control_latency = micros(500);
  /// Fabric-manager processing time to recompute reroutes for one fault.
  SimDuration fm_fault_processing = millis(2);
  /// Fabric-manager processing time to recompute one multicast tree; the
  /// paper's multicast recovery (~110 ms) is slower than unicast (~65 ms)
  /// because the tree must be recomputed and reinstalled switch by switch.
  SimDuration fm_multicast_processing = millis(30);
  /// Per-switch flow-table installation cost (OpenFlow flow_mod analogue).
  SimDuration flow_install_cost = millis(1);

  // --- failure detection ablation ---
  /// When true, switches also react to carrier loss immediately instead of
  /// waiting for the LDM timeout (not part of the paper's design; used by
  /// the ablation bench).
  bool fast_link_detection = false;

  // --- proxy ARP ---
  /// Edge-switch timeout for an ARP query to the fabric manager, after
  /// which the request falls back to broadcast.
  SimDuration arp_query_timeout = millis(50);

  // --- fabric-manager scale-out (E22) ---
  /// Registry shards the FM splits its IP->PMAC soft state across. 1
  /// (default): the classic single endpoint. 0: auto — one shard per pod.
  /// N > 1: each shard answers ArpQuery/HostRegister at its own
  /// control-plane address (kFmShardIdBase + s) pinned to its own
  /// simulator shard, so ARP service parallelizes under the PDES engine.
  std::size_t fm_shards = 1;
  /// Edge-switch ARP coalescing: duplicate in-flight resolutions for one
  /// IP ride a single FM query and fan the answer out (on by default —
  /// the first query per IP is always issued, so resolution behavior is
  /// unchanged; only duplicate control traffic disappears).
  bool arp_coalescing = true;
  /// Bounded per-edge negative ARP cache: after an FM miss, repeat
  /// queries for the same absent IP are answered locally (with the same
  /// broadcast fallback) until the entry expires. 0 disables.
  std::size_t arp_negative_cache_entries = 64;
  /// Lifetime of a negative cache entry. Matches the host ARP retry
  /// interval by default so a retrying host is throttled to roughly one
  /// FM-bound query per edge per interval.
  SimDuration arp_negative_ttl = millis(200);
  /// Hot-standby FM replica at kFmReplicaId, fed by a state-delta stream
  /// from the primary (and every registry shard). failover_to_replica()
  /// then restores from the last streamed deltas instead of a cold wipe,
  /// bounding the blackout to the dirty window.
  bool fm_replica = false;
  /// Period between delta syncs toward the replica (per section; dirty
  /// sections only).
  SimDuration fm_replica_sync_interval = millis(100);

  // --- ECMP ablation ---
  /// kFlowHash pins each flow to one uplink (the paper's design: no
  /// intra-flow reordering). kPacketSpray round-robins every packet —
  /// better instantaneous balance, but reorders TCP (bench E11 quantifies
  /// why the paper hashes flows).
  enum class EcmpMode { kFlowHash, kPacketSpray };
  EcmpMode ecmp_mode = EcmpMode::kFlowHash;

  // --- forwarding-state implementation (E19 scale work) ---
  /// kCompact (default): flat PMAC-prefix tables — contiguous host table
  /// with sorted indexes, flat pruned-route FIB, fixed open-addressed
  /// flow cache. kLegacyMap: the seed's node-allocating std::map /
  /// unordered_map structures, kept so the chaos soak can diff frame
  /// traces against the compact build and the E19 bench can measure the
  /// bytes-per-host gap.
  enum class Tables { kCompact, kLegacyMap };
  Tables tables = Tables::kCompact;
  /// Flow-cache capacity per switch in compact mode (rounded up to a
  /// power of two; allocated lazily, so core switches that never route
  /// upward pay nothing). Legacy mode keeps the seed's 65536-entry
  /// clear-on-overflow map.
  std::size_t flow_cache_entries = 4096;
};

}  // namespace portland::core
