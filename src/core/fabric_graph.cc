#include "core/fabric_graph.h"

#include <algorithm>

#include "sim/snapshot.h"

namespace portland::core {
namespace {

constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

/// Slot of `id` in an info vector sorted ascending by id; kNoSlot if
/// absent.
template <typename InfoVec>
std::uint32_t find_slot(const InfoVec& v, SwitchId id) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), id,
      [](const auto& info, SwitchId x) { return info.id < x; });
  if (it == v.end() || it->id != id) return kNoSlot;
  return static_cast<std::uint32_t>(it - v.begin());
}

// Aliased by adjacency entries whose link has no fault-matrix cell yet.
constexpr bool kDead = false;

std::uint32_t be32_at(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return detail::to_net(v);
}

std::uint64_t be64_at(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return detail::to_net(v);
}

constexpr std::size_t kOffsetEntryBytes = 12;  // u64 id + u32 offset
constexpr std::size_t kLinkRecordBytes = 17;   // u64 a + u64 b + u8 up
constexpr std::size_t kDirtyCap = 128;

}  // namespace

HelloDelta FabricGraph::apply_hello(SwitchId id, const SwitchHello& hello) {
  const auto [mit, created] = switches_.try_emplace(id);
  SwitchState& st = mit->second;
  if (created) note_switch_dirty(id);
  const SwitchLocator old_locator = st.locator;
  const std::map<std::uint16_t, SwitchId> old_ports = st.port_to_neighbor;

  // Effective adjacency before the hello: reported neighbors whose link the
  // fault matrix still believes alive. Captured before the fresh neighbors
  // are ingested (ingestion emplaces default-alive entries).
  std::vector<SwitchId> old_effective;
  old_effective.reserve(st.neighbor_set.size());
  for (const SwitchId n : st.neighbor_set) {
    if (link_alive(id, n)) old_effective.push_back(n);
  }

  st.locator = hello.self;
  st.port_to_neighbor.clear();
  st.neighbor_set.clear();
  for (const NeighborEntry& n : hello.neighbors) {
    st.port_to_neighbor[n.port] = n.neighbor.switch_id;
    st.neighbor_set.insert(n.neighbor.switch_id);
    // Newly learned links default to alive.
    const auto [lit, inserted] =
        link_alive_.emplace(link_key(id, n.neighbor.switch_id), true);
    if (inserted) note_link_dirty(lit->first);
  }

  HelloDelta delta;
  delta.changed =
      old_locator != st.locator || old_ports != st.port_to_neighbor;
  if (delta.changed) note_switch_dirty(id);
  if (delta.changed && idx_.valid) {
    if (old_locator == st.locator) {
      // Same locator: the switch population and every level/pod/position
      // the index depends on are untouched; only this switch's own
      // adjacency lists can differ, so patch them in place. (A
      // brand-new switch always takes the invalidate branch — its old
      // locator is the default-constructed one.)
      patch_index_adjacency(id, st);
    } else {
      idx_.valid = false;
    }
  }

  delta.routing_changed = old_locator != st.locator;
  if (!delta.routing_changed) {
    std::vector<SwitchId> new_effective;
    new_effective.reserve(st.neighbor_set.size());
    for (const SwitchId n : st.neighbor_set) {
      if (link_alive(id, n)) new_effective.push_back(n);
    }
    delta.routing_changed = old_effective != new_effective;
  }
  return delta;
}

bool FabricGraph::set_link_state(SwitchId a, SwitchId b, bool up) {
  auto [it, inserted] = link_alive_.emplace(link_key(a, b), up);
  // A brand-new entry has no adjacency yet (adjacency only comes from
  // hellos), so the index cannot reference it — but invalidating is cheap
  // and keeps the invariant local. In-place flips stay index-transparent.
  if (inserted) idx_.valid = false;
  if (!inserted && it->second == up) return false;
  it->second = up;
  note_link_dirty(it->first);
  return true;
}

const SwitchLocator* FabricGraph::locator(SwitchId id) const {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second.locator;
}

bool FabricGraph::link_alive(SwitchId a, SwitchId b) const {
  const auto it = link_alive_.find(link_key(a, b));
  return it != link_alive_.end() && it->second;
}

bool FabricGraph::adjacent(SwitchId a, SwitchId b) const {
  const auto it = switches_.find(a);
  return it != switches_.end() && it->second.neighbor_set.count(b) != 0;
}

int FabricGraph::port_between(SwitchId from, SwitchId to) const {
  const auto it = switches_.find(from);
  if (it == switches_.end()) return -1;
  for (const auto& [port, nbr] : it->second.port_to_neighbor) {
    if (nbr == to) return static_cast<int>(port);
  }
  return -1;
}

std::vector<SwitchId> FabricGraph::switches_at(Level level) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == level) out.push_back(id);
  }
  return out;
}

std::vector<SwitchId> FabricGraph::edges_in_pod(std::uint16_t pod) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kEdge && st.locator.pod == pod) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<SwitchId> FabricGraph::aggs_in_pod(std::uint16_t pod) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kAggregation && st.locator.pod == pod) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<SwitchId> FabricGraph::cores() const {
  return switches_at(Level::kCore);
}

const std::set<SwitchId>& FabricGraph::neighbors(SwitchId id) const {
  static const std::set<SwitchId> kEmpty;
  const auto it = switches_.find(id);
  return it == switches_.end() ? kEmpty : it->second.neighbor_set;
}

std::size_t FabricGraph::failed_link_count() const {
  std::size_t n = 0;
  for (const auto& [key, alive] : link_alive_) {
    if (!alive) ++n;
  }
  return n;
}

SwitchId FabricGraph::edge_at(std::uint16_t pod, std::uint8_t position) const {
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kEdge && st.locator.pod == pod &&
        st.locator.position == position) {
      return id;
    }
  }
  return kInvalidSwitchId;
}

const FabricGraph::TopoIndex& FabricGraph::index() const {
  if (idx_.valid) return idx_;
  TopoIndex& ix = idx_;
  ix.cores.clear();
  ix.aggs.clear();
  ix.edges.clear();
  ix.aggs_by_pod.clear();
  ix.edges_by_pod.clear();

  // Pass 1: slot assignment per level, ascending id (map order).
  for (const auto& [id, st] : switches_) {
    switch (st.locator.level) {
      case Level::kCore: {
        ix.cores.push_back({id, {}});
        break;
      }
      case Level::kAggregation: {
        ix.aggs.push_back({id, st.locator.pod, {}, {}});
        ix.aggs_by_pod[st.locator.pod].push_back(
            static_cast<std::uint32_t>(ix.aggs.size() - 1));
        break;
      }
      case Level::kEdge: {
        ix.edges.push_back({id, st.locator.pod, st.locator.position, {}});
        ix.edges_by_pod[st.locator.pod].push_back(
            static_cast<std::uint32_t>(ix.edges.size() - 1));
        break;
      }
      default:
        break;
    }
  }

  // Pass 2: adjacency lists, each from the owning switch's own report.
  // Slots are found by binary search on the pass-1 vectors; map iteration
  // order guarantees they are ascending by id.
  std::size_t c = 0, a = 0, e = 0;
  for (const auto& [id, st] : switches_) {
    switch (st.locator.level) {
      case Level::kCore:
        build_site_adjacency(ix, Level::kCore, c++, st);
        break;
      case Level::kAggregation:
        build_site_adjacency(ix, Level::kAggregation, a++, st);
        break;
      case Level::kEdge:
        build_site_adjacency(ix, Level::kEdge, e++, st);
        break;
      default:
        break;
    }
  }
  ix.valid = true;
  return ix;
}

void FabricGraph::build_site_adjacency(TopoIndex& ix, Level level,
                                       std::size_t slot,
                                       const SwitchState& st) const {
  const auto cell_or_dead = [this](SwitchId a, SwitchId b) -> const bool* {
    const auto it = link_alive_.find(link_key(a, b));
    return it == link_alive_.end() ? &kDead : &it->second;
  };
  switch (level) {
    case Level::kCore: {
      TopoIndex::CoreInfo& core = ix.cores[slot];
      core.down.clear();
      for (const SwitchId nbr : st.neighbor_set) {
        const std::uint32_t as = find_slot(ix.aggs, nbr);
        if (as == kNoSlot) continue;
        core.down.emplace_back(as, ix.aggs[as].pod, cell_or_dead(core.id, nbr));
      }
      break;
    }
    case Level::kAggregation: {
      TopoIndex::AggInfo& agg = ix.aggs[slot];
      agg.up.clear();
      agg.down.clear();
      for (const SwitchId nbr : st.neighbor_set) {
        const bool* cell = cell_or_dead(agg.id, nbr);
        if (const std::uint32_t cs = find_slot(ix.cores, nbr); cs != kNoSlot) {
          agg.up.emplace_back(cs, cell);
        } else if (const SwitchLocator* loc = locator(nbr);
                   loc != nullptr && loc->level == Level::kEdge) {
          agg.down.emplace_back(nbr, cell);
        }
      }
      break;
    }
    case Level::kEdge: {
      TopoIndex::EdgeInfo& edge = ix.edges[slot];
      edge.aggs.clear();
      for (const SwitchId nbr : st.neighbor_set) {
        const std::uint32_t as = find_slot(ix.aggs, nbr);
        if (as != kNoSlot) edge.aggs.push_back(as);
      }
      break;
    }
    default:
      break;
  }
}

void FabricGraph::patch_index_adjacency(SwitchId id,
                                        const SwitchState& st) const {
  TopoIndex& ix = idx_;
  if (!ix.valid) return;
  switch (st.locator.level) {
    case Level::kCore: {
      const std::uint32_t slot = find_slot(ix.cores, id);
      if (slot == kNoSlot) {
        ix.valid = false;  // population drifted; shouldn't happen
        return;
      }
      build_site_adjacency(ix, Level::kCore, slot, st);
      break;
    }
    case Level::kAggregation: {
      const std::uint32_t slot = find_slot(ix.aggs, id);
      if (slot == kNoSlot) {
        ix.valid = false;
        return;
      }
      build_site_adjacency(ix, Level::kAggregation, slot, st);
      break;
    }
    case Level::kEdge: {
      const std::uint32_t slot = find_slot(ix.edges, id);
      if (slot == kNoSlot) {
        ix.valid = false;
        return;
      }
      build_site_adjacency(ix, Level::kEdge, slot, st);
      break;
    }
    default:
      // Unknown-level switches are not in the index; their own adjacency
      // lists don't exist and nothing referencing them changed.
      break;
  }
}

PruneMap FabricGraph::compute_prunes(const DstKey& key) const {
  PruneMap out;
  const bool pod_level = key.position == kUnknownPosition;
  const SwitchId target_edge =
      pod_level ? kInvalidSwitchId : edge_at(key.pod, key.position);
  if (!pod_level && target_edge == kInvalidSwitchId) return out;

  const TopoIndex& ix = index();

  // Which aggs in the destination pod still have an alive downlink to the
  // target edge (trivially all of them for pod-level keys).
  std::vector<std::uint8_t> agg_serves(ix.aggs.size(), pod_level ? 1 : 0);
  if (!pod_level) {
    const auto pit = ix.aggs_by_pod.find(key.pod);
    if (pit != ix.aggs_by_pod.end()) {
      for (const std::uint32_t a : pit->second) {
        for (const auto& [edge_id, alive] : ix.aggs[a].down) {
          if (edge_id == target_edge && *alive) {
            agg_serves[a] = 1;
            break;
          }
        }
      }
    }
  }

  // Cores that can still deliver to the destination: an alive downlink (by
  // the core's report) into a destination-pod agg that still serves it.
  std::vector<std::uint8_t> ok_core(ix.cores.size(), 0);
  for (std::uint32_t c = 0; c < ix.cores.size(); ++c) {
    for (const auto& [agg, pod, alive] : ix.cores[c].down) {
      if (pod == key.pod && *alive && agg_serves[agg]) {
        ok_core[c] = 1;
        break;
      }
    }
  }

  // 1. Aggregation switches in other pods avoid cores that lost the
  //    destination. 2 (hoisted). An agg has a surviving path iff any alive
  //    uplink reaches an ok core — this depends only on the agg, not on
  //    which edge sits below it.
  std::vector<std::uint8_t> agg_has_path(ix.aggs.size(), 0);
  for (std::uint32_t a = 0; a < ix.aggs.size(); ++a) {
    const TopoIndex::AggInfo& agg = ix.aggs[a];
    bool has_path = false;
    for (const auto& [core, alive] : agg.up) {
      if (*alive && ok_core[core]) has_path = true;
    }
    agg_has_path[a] = has_path ? 1 : 0;
    if (agg.pod == key.pod) continue;
    std::set<SwitchId>* avoid = nullptr;
    for (const auto& [core, alive] : agg.up) {
      if (ok_core[core]) continue;
      if (avoid == nullptr) avoid = &out[agg.id];
      avoid->insert(ix.cores[core].id);
    }
  }

  // 2. Edge switches in other pods avoid aggregation switches with no
  //    surviving core toward the destination.
  for (const TopoIndex::EdgeInfo& edge : ix.edges) {
    if (edge.pod == key.pod) continue;
    std::set<SwitchId>* avoid = nullptr;
    for (const std::uint32_t a : edge.aggs) {
      if (agg_has_path[a]) continue;
      if (avoid == nullptr) avoid = &out[edge.id];
      avoid->insert(ix.aggs[a].id);
    }
  }

  // 3. Edges inside the destination pod avoid aggregation switches whose
  //    downlink to the destination edge died (edge-locator keys only).
  if (!pod_level) {
    const auto pit = ix.edges_by_pod.find(key.pod);
    if (pit != ix.edges_by_pod.end()) {
      for (const std::uint32_t e : pit->second) {
        const TopoIndex::EdgeInfo& edge = ix.edges[e];
        if (edge.id == target_edge) continue;
        std::set<SwitchId>* avoid = nullptr;
        for (const std::uint32_t a : edge.aggs) {
          if (agg_serves[a]) continue;
          if (avoid == nullptr) avoid = &out[edge.id];
          avoid->insert(ix.aggs[a].id);
        }
      }
    }
  }

  return out;
}

std::vector<DstKey> FabricGraph::keys_for_link(SwitchId a, SwitchId b) const {
  const SwitchLocator* la = locator(a);
  const SwitchLocator* lb = locator(b);
  if (la == nullptr || lb == nullptr) return {};

  // Normalize so `la` is the lower level.
  if (static_cast<int>(la->level) > static_cast<int>(lb->level)) {
    std::swap(la, lb);
  }
  if (la->level == Level::kEdge && lb->level == Level::kAggregation) {
    if (la->pod == kUnknownPod || la->position == kUnknownPosition) return {};
    return {DstKey{la->pod, la->position}};
  }
  if (la->level == Level::kAggregation && lb->level == Level::kCore) {
    if (la->pod == kUnknownPod) return {};
    return {DstKey{la->pod, kUnknownPosition}};
  }
  return {};
}

void FabricGraph::note_switch_dirty(SwitchId id) {
  if (dirty_switches_.size() >= kDirtyCap) {
    dirty_overflow_ = true;
    return;
  }
  dirty_switches_.push_back(id);
}

void FabricGraph::note_link_dirty(std::pair<SwitchId, SwitchId> key) {
  if (dirty_links_.size() >= kDirtyCap) {
    dirty_overflow_ = true;
    return;
  }
  dirty_links_.push_back(key);
}

void FabricGraph::save_state(sim::SnapshotWriter& w) const {
  // Section layout (content-addressed):
  //   u64 payload hash | u32 payload length | payload
  // payload:
  //   u32 n_switches | n × (u64 id, u32 offset into switch block)
  //   | u32 switch-block length | switch block (records below)
  //   | u32 n_links | n × (u64 a, u64 b, u8 up)   fixed 17-byte stride
  // The hash + offset table + fixed-stride link block let a restore onto
  // a graph already holding this exact payload touch only its own dirty
  // entries (see restore_state).
  std::vector<std::uint8_t> block;
  sim::SnapshotWriter bw(block);
  std::vector<std::pair<SwitchId, std::uint32_t>> offsets;
  offsets.reserve(switches_.size());
  for (const auto& [id, st] : switches_) {
    offsets.emplace_back(id, static_cast<std::uint32_t>(bw.size()));
    bw.u64(id);
    bw.u64(st.locator.switch_id);
    bw.u8(static_cast<std::uint8_t>(st.locator.level));
    bw.u16(st.locator.pod);
    bw.u8(st.locator.position);
    bw.u32(static_cast<std::uint32_t>(st.port_to_neighbor.size()));
    for (const auto& [port, neighbor] : st.port_to_neighbor) {
      bw.u16(port);
      bw.u64(neighbor);
    }
    bw.u32(static_cast<std::uint32_t>(st.neighbor_set.size()));
    for (SwitchId n : st.neighbor_set) bw.u64(n);
  }

  std::vector<std::uint8_t> payload;
  sim::SnapshotWriter pw(payload);
  pw.u32(static_cast<std::uint32_t>(offsets.size()));
  for (const auto& [id, off] : offsets) {
    pw.u64(id);
    pw.u32(off);
  }
  pw.blob(block);
  pw.u32(static_cast<std::uint32_t>(link_alive_.size()));
  for (const auto& [key, up] : link_alive_) {
    pw.u64(key.first);
    pw.u64(key.second);
    pw.u8(up ? 1 : 0);
  }

  w.u64(sim::content_hash(payload));
  w.blob(payload);
}

void FabricGraph::merge_switch_body(sim::SnapshotReader& r, SwitchId id,
                                    SwitchState& st, bool& structural,
                                    AdjDirtyList& adj_dirty) {
  SwitchLocator loc;
  loc.switch_id = r.u64();
  loc.level = static_cast<Level>(r.u8());
  loc.pod = r.u16();
  loc.position = r.u8();
  if (st.locator != loc) {
    st.locator = loc;
    structural = true;
  }

  // Port mappings feed port_between / multicast mirrors, not the index.
  const std::uint32_t n_ports = r.u32();
  auto pit = st.port_to_neighbor.begin();
  for (std::uint32_t p = 0; p < n_ports && r.ok(); ++p) {
    const std::uint16_t port = r.u16();
    const SwitchId nbr = r.u64();
    while (pit != st.port_to_neighbor.end() && pit->first < port) {
      pit = st.port_to_neighbor.erase(pit);
    }
    if (pit == st.port_to_neighbor.end() || pit->first != port) {
      pit = st.port_to_neighbor.emplace_hint(pit, port, nbr);
    } else if (pit->second != nbr) {
      pit->second = nbr;
    }
    ++pit;
  }
  pit = st.port_to_neighbor.erase(pit, st.port_to_neighbor.end());

  bool adj_changed = false;
  const std::uint32_t n_neighbors = r.u32();
  auto nit = st.neighbor_set.begin();
  for (std::uint32_t p = 0; p < n_neighbors && r.ok(); ++p) {
    const SwitchId nbr = r.u64();
    while (nit != st.neighbor_set.end() && *nit < nbr) {
      nit = st.neighbor_set.erase(nit);
      adj_changed = true;
    }
    if (nit == st.neighbor_set.end() || *nit != nbr) {
      nit = st.neighbor_set.emplace_hint(nit, nbr);
      adj_changed = true;
    }
    ++nit;
  }
  if (nit != st.neighbor_set.end()) {
    st.neighbor_set.erase(nit, st.neighbor_set.end());
    adj_changed = true;
  }
  if (adj_changed) adj_dirty.emplace_back(id, &st);
}

void FabricGraph::merge_full(sim::SnapshotReader& r, bool& structural,
                             AdjDirtyList& adj_dirty) {
  // In-place lockstep merge rather than clear-and-rebuild. Both the image
  // and the live maps are sorted, so one forward reconciliation pass
  // (erase-while-behind, assign-on-match, hint-insert otherwise) restores
  // the graph. Forks restore a warm image over an almost-identical live
  // graph, where this reuses every tree node.
  const std::uint32_t n_switches = r.u32();
  r.skip(kOffsetEntryBytes * n_switches);  // random access not needed here
  (void)r.u32();                           // switch-block length
  auto sit = switches_.begin();
  for (std::uint32_t i = 0; i < n_switches && r.ok(); ++i) {
    const SwitchId id = r.u64();
    while (sit != switches_.end() && sit->first < id) {
      sit = switches_.erase(sit);
      structural = true;
    }
    if (sit == switches_.end() || sit->first != id) {
      sit = switches_.emplace_hint(sit, id, SwitchState{});
      structural = true;
    }
    SwitchState& st = sit->second;
    ++sit;
    merge_switch_body(r, id, st, structural, adj_dirty);
  }
  while (sit != switches_.end()) {
    sit = switches_.erase(sit);
    structural = true;
  }

  const std::uint32_t n_links = r.u32();
  auto lit = link_alive_.begin();
  for (std::uint32_t i = 0; i < n_links && r.ok(); ++i) {
    const SwitchId a = r.u64();
    const SwitchId b = r.u64();
    const bool up = r.u8() != 0;
    const std::pair<SwitchId, SwitchId> key{a, b};
    while (lit != link_alive_.end() && lit->first < key) {
      lit = link_alive_.erase(lit);
      structural = true;
    }
    if (lit == link_alive_.end() || lit->first != key) {
      lit = link_alive_.emplace_hint(lit, key, up);
      structural = true;
    } else {
      // Value flip on an existing node: index cells alias it, so this is
      // index-transparent by construction.
      lit->second = up;
    }
    ++lit;
  }
  while (lit != link_alive_.end()) {
    lit = link_alive_.erase(lit);
    structural = true;
  }
}

bool FabricGraph::merge_selective(std::span<const std::uint8_t> payload,
                                  bool& structural, AdjDirtyList& adj_dirty) {
  // The live graph *is* this payload plus the mutations noted in the
  // dirty lists — reconcile only those entries, via the offset table for
  // switches and the fixed-stride sorted block for links.
  sim::SnapshotReader hr(payload);
  const std::uint32_t n_switches = hr.u32();
  const std::span<const std::uint8_t> table =
      hr.bytes_view(kOffsetEntryBytes * n_switches);
  const std::uint32_t block_len = hr.u32();
  const std::span<const std::uint8_t> block = hr.bytes_view(block_len);
  const std::uint32_t n_links = hr.u32();
  const std::span<const std::uint8_t> links =
      hr.bytes_view(kLinkRecordBytes * n_links);
  if (!hr.ok() || hr.remaining_size() != 0) return false;

  std::sort(dirty_switches_.begin(), dirty_switches_.end());
  dirty_switches_.erase(
      std::unique(dirty_switches_.begin(), dirty_switches_.end()),
      dirty_switches_.end());
  for (const SwitchId id : dirty_switches_) {
    // Binary search the offset table (ids ascending, map save order).
    std::size_t lo = 0, hi = n_switches;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const SwitchId mid_id = be64_at(table.data() + mid * kOffsetEntryBytes);
      if (mid_id < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const bool found =
        lo < n_switches && be64_at(table.data() + lo * kOffsetEntryBytes) == id;
    if (!found) {
      // Dirty switch absent from the image: the mutation created it.
      if (switches_.erase(id) > 0) structural = true;
      continue;
    }
    const std::uint32_t off =
        be32_at(table.data() + lo * kOffsetEntryBytes + sizeof(std::uint64_t));
    if (off >= block_len) return false;
    sim::SnapshotReader sr(block.subspan(off));
    if (sr.u64() != id) return false;
    const auto sit = switches_.lower_bound(id);
    if (sit == switches_.end() || sit->first != id) {
      bool s = false;
      merge_switch_body(
          sr, id, switches_.emplace_hint(sit, id, SwitchState{})->second, s,
          adj_dirty);
      structural = true;
    } else {
      merge_switch_body(sr, id, sit->second, structural, adj_dirty);
    }
    if (!sr.ok()) return false;
  }

  std::sort(dirty_links_.begin(), dirty_links_.end());
  dirty_links_.erase(std::unique(dirty_links_.begin(), dirty_links_.end()),
                     dirty_links_.end());
  for (const auto& key : dirty_links_) {
    std::size_t lo = 0, hi = n_links;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const std::uint8_t* rec = links.data() + mid * kLinkRecordBytes;
      const std::pair<SwitchId, SwitchId> mid_key{
          be64_at(rec), be64_at(rec + sizeof(std::uint64_t))};
      if (mid_key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const std::uint8_t* rec = links.data() + lo * kLinkRecordBytes;
    const bool found = lo < n_links && be64_at(rec) == key.first &&
                       be64_at(rec + sizeof(std::uint64_t)) == key.second;
    if (!found) {
      if (link_alive_.erase(key) > 0) structural = true;
      continue;
    }
    const bool up = rec[2 * sizeof(std::uint64_t)] != 0;
    const auto lit = link_alive_.lower_bound(key);
    if (lit == link_alive_.end() || lit->first != key) {
      link_alive_.emplace_hint(lit, key, up);
      structural = true;
    } else {
      lit->second = up;  // index-transparent value flip
    }
  }
  return true;
}

void FabricGraph::restore_state(sim::SnapshotReader& r) {
  const std::uint64_t hash = r.u64();
  const std::uint32_t payload_len = r.u32();
  const std::span<const std::uint8_t> payload = r.bytes_view(payload_len);
  if (!r.ok()) {
    restored_hash_valid_ = false;
    idx_.valid = false;
    return;
  }

  bool structural = false;
  AdjDirtyList adj_dirty;
  bool merged = false;
  if (restored_hash_valid_ && hash == restored_hash_ && !dirty_overflow_) {
    merged = merge_selective(payload, structural, adj_dirty);
  }
  if (!merged) {
    sim::SnapshotReader pr(payload);
    merge_full(pr, structural, adj_dirty);
    if (!pr.ok()) {
      // Propagate the sub-reader's failure to the outer stream so the
      // whole restore reports it (the payload bytes themselves were
      // already consumed above).
      r.skip(r.remaining_size() + 1);
      restored_hash_valid_ = false;
      idx_.valid = false;
      return;
    }
  }

  restored_hash_ = hash;
  restored_hash_valid_ = true;
  dirty_overflow_ = false;
  dirty_switches_.clear();
  dirty_links_.clear();

  if (structural) {
    idx_.valid = false;
    return;
  }
  // Population, locators, and link nodes are all unchanged — the index
  // still describes this graph except for the adjacency lists of switches
  // whose reported neighbor set moved (e.g. forks undoing a what-if's
  // hello withdrawals). Patch those sites; everything else, including the
  // aliased alive pointers, is already correct.
  for (const auto& [id, st] : adj_dirty) patch_index_adjacency(id, *st);
}

}  // namespace portland::core
