#include "core/fabric_graph.h"

#include <algorithm>

namespace portland::core {

bool FabricGraph::apply_hello(SwitchId id, const SwitchHello& hello) {
  SwitchState& st = switches_[id];
  const SwitchLocator old_locator = st.locator;
  const std::map<std::uint16_t, SwitchId> old_ports = st.port_to_neighbor;

  st.locator = hello.self;
  st.port_to_neighbor.clear();
  st.neighbor_set.clear();
  for (const NeighborEntry& n : hello.neighbors) {
    st.port_to_neighbor[n.port] = n.neighbor.switch_id;
    st.neighbor_set.insert(n.neighbor.switch_id);
    // Newly learned links default to alive.
    link_alive_.emplace(link_key(id, n.neighbor.switch_id), true);
  }
  return old_locator != st.locator || old_ports != st.port_to_neighbor;
}

bool FabricGraph::set_link_state(SwitchId a, SwitchId b, bool up) {
  auto [it, inserted] = link_alive_.emplace(link_key(a, b), up);
  if (!inserted && it->second == up) return false;
  it->second = up;
  return true;
}

const SwitchLocator* FabricGraph::locator(SwitchId id) const {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second.locator;
}

bool FabricGraph::link_alive(SwitchId a, SwitchId b) const {
  const auto it = link_alive_.find(link_key(a, b));
  return it != link_alive_.end() && it->second;
}

bool FabricGraph::adjacent(SwitchId a, SwitchId b) const {
  const auto it = switches_.find(a);
  return it != switches_.end() && it->second.neighbor_set.count(b) != 0;
}

int FabricGraph::port_between(SwitchId from, SwitchId to) const {
  const auto it = switches_.find(from);
  if (it == switches_.end()) return -1;
  for (const auto& [port, nbr] : it->second.port_to_neighbor) {
    if (nbr == to) return static_cast<int>(port);
  }
  return -1;
}

std::vector<SwitchId> FabricGraph::switches_at(Level level) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == level) out.push_back(id);
  }
  return out;
}

std::vector<SwitchId> FabricGraph::edges_in_pod(std::uint16_t pod) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kEdge && st.locator.pod == pod) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<SwitchId> FabricGraph::aggs_in_pod(std::uint16_t pod) const {
  std::vector<SwitchId> out;
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kAggregation && st.locator.pod == pod) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<SwitchId> FabricGraph::cores() const {
  return switches_at(Level::kCore);
}

const std::set<SwitchId>& FabricGraph::neighbors(SwitchId id) const {
  static const std::set<SwitchId> kEmpty;
  const auto it = switches_.find(id);
  return it == switches_.end() ? kEmpty : it->second.neighbor_set;
}

std::size_t FabricGraph::failed_link_count() const {
  std::size_t n = 0;
  for (const auto& [key, alive] : link_alive_) {
    if (!alive) ++n;
  }
  return n;
}

SwitchId FabricGraph::edge_at(std::uint16_t pod, std::uint8_t position) const {
  for (const auto& [id, st] : switches_) {
    if (st.locator.level == Level::kEdge && st.locator.pod == pod &&
        st.locator.position == position) {
      return id;
    }
  }
  return kInvalidSwitchId;
}

std::set<SwitchId> FabricGraph::cores_reaching(std::uint16_t pod,
                                               SwitchId target) const {
  std::set<SwitchId> ok;
  for (const SwitchId core : cores()) {
    for (const SwitchId agg : neighbors(core)) {
      const SwitchLocator* loc = locator(agg);
      if (loc == nullptr || loc->level != Level::kAggregation ||
          loc->pod != pod) {
        continue;
      }
      if (!link_alive(core, agg)) continue;
      if (target == kInvalidSwitchId) {
        ok.insert(core);  // pod-level reachability
        break;
      }
      if (adjacent(agg, target) && link_alive(agg, target)) {
        ok.insert(core);
        break;
      }
    }
  }
  return ok;
}

PruneMap FabricGraph::compute_prunes(const DstKey& key) const {
  PruneMap out;
  const bool pod_level = key.position == kUnknownPosition;
  const SwitchId target_edge =
      pod_level ? kInvalidSwitchId : edge_at(key.pod, key.position);
  if (!pod_level && target_edge == kInvalidSwitchId) return out;

  // Cores that can still deliver to the destination.
  const std::set<SwitchId> ok_cores =
      cores_reaching(key.pod, target_edge);

  // 1. Aggregation switches in other pods avoid cores that lost the
  //    destination.
  for (const auto& [agg, st] : switches_) {
    if (st.locator.level != Level::kAggregation) continue;
    if (st.locator.pod == key.pod) continue;
    for (const SwitchId nbr : st.neighbor_set) {
      const SwitchLocator* loc = locator(nbr);
      if (loc == nullptr || loc->level != Level::kCore) continue;
      if (ok_cores.count(nbr) == 0) out[agg].insert(nbr);
    }
  }

  // 2. Edge switches in other pods avoid aggregation switches with no
  //    surviving core toward the destination (counting only cores they can
  //    still reach over alive uplinks).
  for (const auto& [edge, st] : switches_) {
    if (st.locator.level != Level::kEdge) continue;
    if (st.locator.pod == key.pod) continue;
    for (const SwitchId agg : st.neighbor_set) {
      const SwitchLocator* aloc = locator(agg);
      if (aloc == nullptr || aloc->level != Level::kAggregation) continue;
      bool has_path = false;
      for (const SwitchId core : neighbors(agg)) {
        const SwitchLocator* cloc = locator(core);
        if (cloc == nullptr || cloc->level != Level::kCore) continue;
        if (!link_alive(agg, core)) continue;
        if (ok_cores.count(core) != 0) {
          has_path = true;
          break;
        }
      }
      if (!has_path) out[edge].insert(agg);
    }
  }

  // 3. Edges inside the destination pod avoid aggregation switches whose
  //    downlink to the destination edge died (edge-locator keys only).
  if (!pod_level) {
    for (const SwitchId edge : edges_in_pod(key.pod)) {
      if (edge == target_edge) continue;
      for (const SwitchId agg : neighbors(edge)) {
        const SwitchLocator* aloc = locator(agg);
        if (aloc == nullptr || aloc->level != Level::kAggregation) continue;
        if (!adjacent(agg, target_edge) || !link_alive(agg, target_edge)) {
          out[edge].insert(agg);
        }
      }
    }
  }

  return out;
}

std::vector<DstKey> FabricGraph::keys_for_link(SwitchId a, SwitchId b) const {
  const SwitchLocator* la = locator(a);
  const SwitchLocator* lb = locator(b);
  if (la == nullptr || lb == nullptr) return {};

  // Normalize so `la` is the lower level.
  if (static_cast<int>(la->level) > static_cast<int>(lb->level)) {
    std::swap(la, lb);
  }
  if (la->level == Level::kEdge && lb->level == Level::kAggregation) {
    if (la->pod == kUnknownPod || la->position == kUnknownPosition) return {};
    return {DstKey{la->pod, la->position}};
  }
  if (la->level == Level::kAggregation && lb->level == Level::kCore) {
    if (la->pod == kUnknownPod) return {};
    return {DstKey{la->pod, kUnknownPosition}};
  }
  return {};
}

}  // namespace portland::core
