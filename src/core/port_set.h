// PortSet: a fixed-size bitmap standing in for std::set<sim::PortId> in
// per-group multicast tables. A switch has at most k ports (k <= 64 at the
// largest supported fabric), so four words replace a red-black tree of
// 56-byte nodes. Iteration is ascending, matching std::set order — the
// replacement is invisible to frame traces.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace portland::core {

class PortSet {
 public:
  static constexpr std::size_t kMaxPorts = 256;

  void insert(std::size_t p) {
    assert(p < kMaxPorts);
    bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
  void erase(std::size_t p) {
    assert(p < kMaxPorts);
    bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
  }
  [[nodiscard]] bool contains(std::size_t p) const {
    return p < kMaxPorts && (bits_[p >> 6] >> (p & 63) & 1) != 0;
  }
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t w : bits_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const std::uint64_t w : bits_) n += std::popcount(w);
    return n;
  }

  /// Calls `fn(port)` for every member in ascending port order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < bits_.size(); ++w) {
      std::uint64_t word = bits_[w];
      while (word != 0) {
        fn(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const PortSet&, const PortSet&) = default;

 private:
  std::array<std::uint64_t, kMaxPorts / 64> bits_{};
};

}  // namespace portland::core
