#include "core/portland_switch.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/memsize.h"
#include "net/igmp.h"
#include "obs/convergence_monitor.h"
#include "obs/flight_recorder.h"
#include "sim/snapshot.h"

namespace portland::core {

using net::ArpMessage;
using net::ArpOp;
using net::ParsedFrame;

PortlandSwitch::PortlandSwitch(sim::Simulator& sim, std::string name,
                               SwitchId id, std::size_t num_ports,
                               ControlPlane& control, PortlandConfig config,
                               Rng rng)
    : Device(sim, std::move(name)),
      id_(id),
      control_(&control),
      config_(config),
      legacy_tables_(config.tables == PortlandConfig::Tables::kLegacyMap),
      rng_(rng),
      ldp_(sim, id, num_ports, config,
           LdpAgent::Hooks{
               [this](sim::PortId p, std::vector<std::uint8_t> bytes) {
                 send(p, sim::make_frame(std::move(bytes)));
               },
               [this](ControlBody body) { send_to_fm(std::move(body)); },
               [this] { on_location_changed(); },
               [this](sim::PortId p, SwitchId n, bool lost) {
                 on_neighbor_event(p, n, lost);
               },
           },
           rng.fork()),
      host_table_(config.tables == PortlandConfig::Tables::kLegacyMap),
      hello_timer_(sim),
      hello_periodic_(sim, config.hello_interval, [this] { send_hello(); }),
      refresh_periodic_(sim, config.host_reregister_interval,
                        [this] { send_soft_state_refresh(); }) {
  add_ports(num_ports);
  if (!legacy_tables_) next_vmid_.assign(num_ports, 0);
  // An edge's hosts hang off its down ports (at most half the radix);
  // the hint is applied lazily, so non-edge switches never allocate.
  host_table_.reserve(std::max<std::size_t>(1, num_ports / 2));
  if (!legacy_tables_) {
    std::size_t slots = 16;
    while (slots < config_.flow_cache_entries) slots <<= 1;
    flow_slot_mask_ = slots - 1;  // slot array itself allocates lazily
  }
  // kNone stays nullptr: it is never dropped, and a stray use faults
  // loudly instead of silently counting nonsense.
  for (std::size_t i = 1; i < obs::kDropReasonCount; ++i) {
    drop_cells_[i] = counters().handle(
        obs::drop_reason_counter(static_cast<obs::DropReason>(i)));
  }
}

void PortlandSwitch::drop(obs::DropReason reason, const sim::FramePtr& frame,
                          sim::PortId port) {
  ++*drop_cells_[static_cast<std::size_t>(reason)];
  if (flight_recorder() != nullptr) record_drop(reason, frame, port);
}

// Note: the destructor intentionally does not touch the control plane —
// teardown order between the Network (which owns switches) and the
// ControlPlane is owned by the fabric builder, and no events run during
// destruction.
PortlandSwitch::~PortlandSwitch() = default;

void PortlandSwitch::start() {
  control_->register_endpoint(
      id_, [this](const ControlMessage& m) { on_control(m); });
  ldp_.start();
  const SimDuration phase = static_cast<SimDuration>(
      rng_.next_below(static_cast<std::uint64_t>(config_.hello_interval)));
  hello_periodic_.start(phase);
  const SimDuration refresh_phase = static_cast<SimDuration>(rng_.next_below(
      static_cast<std::uint64_t>(config_.host_reregister_interval)));
  refresh_periodic_.start(refresh_phase);
  schedule_hello();
}

void PortlandSwitch::send_soft_state_refresh() {
  // Host registrations (edge switches). A refresh with an unchanged PMAC
  // is a no-op at the FM unless it lost its state. Iteration is ascending
  // by AMAC in both table builds — the message order is part of the
  // deterministic event stream.
  host_table_.for_each([this](const HostEntry& entry) {
    if (entry.ip.is_zero()) return;
    send_to_fm(HostRegister{entry.ip, entry.amac, entry.pmac.to_mac(),
                            static_cast<std::uint16_t>(entry.port)});
  });
  // Multicast membership and sender grafts.
  for (const auto& [group, ports] : local_members_) {
    ports.for_each([&](std::size_t p) {
      send_to_fm(McastJoin{group, static_cast<std::uint16_t>(p)});
    });
  }
  for (const Ipv4Address group : mcast_sender_reported_) {
    send_to_fm(McastSenderSeen{group});
  }
  // Outstanding faults: the FM's fault matrix is soft state too.
  for (const PortFault& fault : reported_down_) {
    send_to_fm(FaultNotify{static_cast<std::uint16_t>(fault.port),
                           fault.neighbor, /*link_up=*/false});
  }
}

void PortlandSwitch::handle_link_status(sim::PortId port, bool up) {
  if (config_.fast_link_detection && !up) {
    ldp_.expire_neighbor(port);
  }
}

// ---------------------------------------------------------------------------
// Ingress dispatch
// ---------------------------------------------------------------------------

void PortlandSwitch::handle_frame(sim::PortId in_port,
                                  const sim::FramePtr& frame) {
  const auto bytes = sim::frame_span(frame);
  // LDP control frames are spotted with a raw EtherType peek so the very
  // frequent LDMs never pay for (or pollute) the parse-metadata cache.
  if (bytes.size() >= net::EthernetHeader::kSize &&
      (static_cast<std::uint16_t>(bytes[12]) << 8 | bytes[13]) ==
          net::to_u16(net::EtherType::kLdp)) {
    ldp_.handle_frame(in_port, bytes);
    return;
  }

  // Parse-once: the first switch on the path parses and attaches the
  // summary to the frame; every later hop reads it back for free.
  const ParsedFrame& parsed = net::parsed_of(frame);

  const bool host_port = !ldp_.has_neighbor(in_port);
  if (host_port) ldp_.note_host_traffic(in_port);

  if (flight_recorder() != nullptr) {
    record_hop(obs::HopEvent::kIngress, frame, in_port, frame->size());
  }

  if (!parsed.valid) {
    drop(obs::DropReason::kMalformed, frame, in_port);
    return;
  }
  if (!ldp_.self().located()) {
    // Cannot assign PMACs or route before discovery completes. Hosts
    // retry (ARP), so early frames are safely dropped.
    drop(obs::DropReason::kBeforeLocated, frame, in_port);
    return;
  }

  if (host_port) {
    // Data on a neighbor-less port of a non-edge switch can only be
    // transient misdelivery during convergence; never treat it as a host.
    if (ldp_.self().level != Level::kEdge) {
      drop(obs::DropReason::kDataOnFabricPort, frame, in_port);
      return;
    }
    handle_host_ingress(in_port, parsed, frame);
  } else {
    handle_fabric_ingress(in_port, parsed, frame);
  }
}

void PortlandSwitch::handle_host_ingress(sim::PortId port,
                                         const ParsedFrame& parsed,
                                         const sim::FramePtr& frame) {
  Ipv4Address ip_hint;
  if (parsed.arp.has_value()) {
    ip_hint = parsed.arp->sender_ip;
  } else if (parsed.ipv4.has_value()) {
    ip_hint = parsed.ipv4->src;
  }
  HostEntry* host = ensure_host(port, parsed.eth.src, ip_hint);
  if (host == nullptr) {
    drop(obs::DropReason::kBadHostSrc, frame, port);
    return;
  }

  if (parsed.arp.has_value()) {
    handle_host_arp(port, parsed, frame);
    return;
  }

  if (parsed.ipv4.has_value() &&
      parsed.ipv4->protocol == net::kProtocolIgmp) {
    const auto igmp = net::IgmpMessage::deserialize(parsed.payload);
    if (!igmp.has_value()) {
      drop(obs::DropReason::kMalformed, frame, port);
      return;
    }
    if (igmp->type == net::IgmpType::kMembershipReport) {
      local_members_[igmp->group].insert(port);
      send_to_fm(McastJoin{igmp->group, static_cast<std::uint16_t>(port)});
    } else {
      auto it = local_members_.find(igmp->group);
      if (it != local_members_.end()) {
        it->second.erase(port);
        if (it->second.empty()) local_members_.erase(it);
      }
      send_to_fm(McastLeave{igmp->group, static_cast<std::uint16_t>(port)});
    }
    return;  // IGMP is consumed by the edge, never forwarded
  }

  // Ingress rewrite: the host's AMAC becomes its PMAC fabric-wide (§3.2).
  net::FrameRewrite rw;
  rw.eth_src = host->pmac.to_mac();
  const auto rewritten = net::rewrite_frame(frame, rw);
  if (flight_recorder() != nullptr) {
    record_hop(obs::HopEvent::kIngressRewrite, rewritten, port,
               host->pmac.to_mac().to_u64());
  }

  if (parsed.eth.dst.is_broadcast()) {
    counters().add("host_broadcasts");
    forward_broadcast(port, /*from_host=*/true, /*from_above=*/false,
                      rewritten);
    return;
  }
  if (parsed.eth.dst.is_multicast()) {
    forward_multicast(port, /*from_host=*/true, parsed, rewritten);
    return;
  }
  forward_unicast(port, parsed.eth.dst, parsed, rewritten,
                  /*redirect_depth=*/0);
}

void PortlandSwitch::handle_fabric_ingress(sim::PortId port,
                                           const ParsedFrame& parsed,
                                           const sim::FramePtr& frame) {
  const auto nbr = ldp_.neighbor(port);
  const bool from_above =
      nbr.has_value() && static_cast<int>(nbr->level) >
                             static_cast<int>(ldp_.self().level);

  if (parsed.eth.dst.is_broadcast()) {
    forward_broadcast(port, /*from_host=*/false, from_above, frame);
    return;
  }
  if (parsed.eth.dst.is_multicast()) {
    forward_multicast(port, /*from_host=*/false, parsed, frame);
    return;
  }
  forward_unicast(port, parsed.eth.dst, parsed, frame, /*redirect_depth=*/0);
}

// ---------------------------------------------------------------------------
// Unicast forwarding
// ---------------------------------------------------------------------------

const PortlandSwitch::Fib& PortlandSwitch::fib() const {
  if (fib_.ldp_gen != ldp_.topology_generation() ||
      fib_.prune_gen != prune_generation_) {
    rebuild_fib();
  }
  return fib_;
}

void PortlandSwitch::rebuild_fib() const {
  ++fib_rebuilds_;
  ++fib_.generation;  // retires every flow-cache entry at once
  fib_.ldp_gen = ldp_.topology_generation();
  fib_.prune_gen = prune_generation_;
  fib_.base_up = ldp_.up_ports();
  fib_.pruned_up.clear();
  fib_.pruned_up_map.clear();
  fib_.down_by_position.clear();
  fib_.down_by_pod.clear();

  // One prune-applied candidate array per installed destination key. Fine
  // (pod, position) entries fold in the pod-wide coarse set so lookups
  // never merge sets per packet. prunes_ iterates in (pod, position)
  // order, so the compact flat table comes out sorted by its u32 key.
  if (!legacy_tables_) fib_.pruned_up.reserve(prunes_.size());
  for (const auto& [key, avoid] : prunes_) {
    const std::set<SwitchId>* coarse = nullptr;
    if (key.position != kUnknownPosition) {
      const auto cit = prunes_.find(DstKey{key.pod, kUnknownPosition});
      if (cit != prunes_.end()) coarse = &cit->second;
    }
    std::vector<sim::PortId> candidates;
    candidates.reserve(fib_.base_up.size());
    for (const sim::PortId p : fib_.base_up) {
      const auto nbr = ldp_.neighbor(p);
      if (!nbr.has_value()) continue;
      if (avoid.count(nbr->switch_id) != 0) continue;
      if (coarse != nullptr && coarse->count(nbr->switch_id) != 0) continue;
      candidates.push_back(p);
    }
    if (legacy_tables_) {
      fib_.pruned_up_map.emplace(key, std::move(candidates));
    } else {
      fib_.pruned_up.push_back(PrunedRoute{
          dst_key_u32(key.pod, key.position), std::move(candidates)});
    }
  }

  // Down-path indexes: aggregation forwards by the PMAC's position field,
  // cores by its pod field — both O(1) array loads instead of a neighbor
  // scan per packet.
  for (const sim::PortId p : ldp_.down_ports()) {
    const auto nbr = ldp_.neighbor(p);
    if (!nbr.has_value()) continue;
    if (nbr->position != kUnknownPosition) {
      if (fib_.down_by_position.size() <= nbr->position) {
        fib_.down_by_position.resize(nbr->position + 1, -1);
      }
      fib_.down_by_position[nbr->position] = static_cast<std::int32_t>(p);
    }
    if (nbr->pod != kUnknownPod) {
      if (fib_.down_by_pod.size() <= nbr->pod) {
        fib_.down_by_pod.resize(nbr->pod + 1, -1);
      }
      fib_.down_by_pod[nbr->pod] = static_cast<std::int32_t>(p);
    }
  }
}

std::optional<sim::PortId> PortlandSwitch::pick_up_port(
    const ParsedFrame& parsed, const sim::FramePtr& frame, MacAddress dst,
    std::uint16_t dst_pod, std::uint8_t dst_position) const {
  const Fib& fib = this->fib();
  const bool spray =
      config_.ecmp_mode == PortlandConfig::EcmpMode::kPacketSpray;

  const FlowCacheKey key{dst.to_u64(), parsed.flow_hash};
  if (!spray) {
    // Exact-match flow cache: (dst PMAC, flow hash) -> egress port. An
    // entry is live only for the FIB generation it was computed against,
    // so topology or prune churn invalidates everything implicitly.
    if (legacy_tables_) {
      const auto it = flow_cache_.find(key);
      if (it != flow_cache_.end() &&
          it->second.generation == fib.generation) {
        ++flow_cache_hits_;
        if (flight_recorder() != nullptr) {
          record_hop(obs::HopEvent::kFlowCacheHit, frame, it->second.port,
                     fib.generation);
        }
        return it->second.port;
      }
    } else if (!flow_slots_.empty()) {
      std::size_t idx = FlowCacheKeyHash{}(key) & flow_slot_mask_;
      for (std::size_t i = 0; i < kFlowProbeWindow;
           ++i, idx = (idx + 1) & flow_slot_mask_) {
        const FlowSlot& slot = flow_slots_[idx];
        if (slot.generation == fib.generation && slot.dst == key.dst &&
            slot.flow_hash == key.flow_hash) {
          ++flow_cache_hits_;
          if (flight_recorder() != nullptr) {
            record_hop(obs::HopEvent::kFlowCacheHit, frame, slot.port,
                       fib.generation);
          }
          return slot.port;
        }
      }
    }
    ++flow_cache_misses_;
  }

  const std::vector<sim::PortId>* candidates = &fib.base_up;
  if (legacy_tables_) {
    if (!fib.pruned_up_map.empty()) {
      if (const auto it =
              fib.pruned_up_map.find(DstKey{dst_pod, dst_position});
          it != fib.pruned_up_map.end()) {
        candidates = &it->second;
      } else if (const auto cit =
                     fib.pruned_up_map.find(DstKey{dst_pod, kUnknownPosition});
                 cit != fib.pruned_up_map.end()) {
        candidates = &cit->second;
      }
    }
  } else if (!fib.pruned_up.empty()) {
    // Fine (pod, position) entry first, then the pod-wide coarse entry —
    // both binary searches over the sorted flat table.
    const auto find_route = [&fib](std::uint32_t k) {
      const auto it = std::lower_bound(
          fib.pruned_up.begin(), fib.pruned_up.end(), k,
          [](const PrunedRoute& r, std::uint32_t key) { return r.key < key; });
      return (it != fib.pruned_up.end() && it->key == k) ? &it->ports
                                                         : nullptr;
    };
    if (const auto* fine = find_route(dst_key_u32(dst_pod, dst_position))) {
      candidates = fine;
    } else if (const auto* coarse =
                   find_route(dst_key_u32(dst_pod, kUnknownPosition))) {
      candidates = coarse;
    }
  }
  if (candidates->empty()) return std::nullopt;

  if (spray) {
    // Ablation: per-packet round robin. Best instantaneous balance, but
    // reorders flows — E11 measures what that does to TCP.
    const sim::PortId port =
        (*candidates)[spray_counter_++ % candidates->size()];
    if (flight_recorder() != nullptr) {
      record_hop(obs::HopEvent::kEcmpChoice, frame, port,
                 candidates->size());
    }
    return port;
  }
  // Flow-level ECMP: all packets of a flow hash to one uplink (§3.5). The
  // hash was precomputed at parse time.
  const sim::PortId port =
      (*candidates)[parsed.flow_hash % candidates->size()];
  if (legacy_tables_) {
    if (flow_cache_.size() >= kFlowCacheCap) flow_cache_.clear();
    flow_cache_.emplace(key, FlowCacheEntry{port, fib.generation});
  } else {
    if (flow_slots_.empty()) flow_slots_.assign(flow_slot_mask_ + 1, {});
    // Prefer an empty or stale slot in the probe window; when all are
    // live, overwrite the home slot (plain eviction — correctness never
    // depends on what the cache holds).
    std::size_t idx = FlowCacheKeyHash{}(key) & flow_slot_mask_;
    FlowSlot* victim = &flow_slots_[idx];
    for (std::size_t i = 0; i < kFlowProbeWindow;
         ++i, idx = (idx + 1) & flow_slot_mask_) {
      if (flow_slots_[idx].generation != fib.generation) {
        victim = &flow_slots_[idx];
        break;
      }
    }
    *victim = FlowSlot{key.dst, key.flow_hash, fib.generation, port};
  }
  if (flight_recorder() != nullptr) {
    record_hop(obs::HopEvent::kEcmpChoice, frame, port, candidates->size());
  }
  return port;
}

void PortlandSwitch::forward_unicast(sim::PortId in_port, MacAddress dst,
                                     const ParsedFrame& parsed,
                                     const sim::FramePtr& frame,
                                     int redirect_depth) {
  const Pmac pmac = Pmac::from_mac(dst);
  const SwitchLocator& self = ldp_.self();

  switch (self.level) {
    case Level::kEdge: {
      if (pmac.pod == self.pod && pmac.position == self.position) {
        if (const HostEntry* entry = host_table_.find_pmac(dst)) {
          deliver_to_local_host(*entry, parsed, frame);
          return;
        }
        // Migration trap (§3.7): the host this PMAC referred to has moved.
        const auto rit = redirects_.find(dst);
        if (rit != redirects_.end() && redirect_depth == 0) {
          counters().add("migration_redirects");
          const MacAddress new_pmac = rit->second.new_pmac;
          send_garp_to_sender(dst, parsed.eth.src);
          net::FrameRewrite rw;
          rw.eth_dst = new_pmac;
          const auto rewritten = net::rewrite_frame(frame, rw);
          forward_unicast(in_port, new_pmac, net::parsed_of(rewritten),
                          rewritten, redirect_depth + 1);
          return;
        }
        drop(obs::DropReason::kUnknownLocalDst, frame, in_port);
        return;
      }
      const auto up = pick_up_port(parsed, frame, dst, pmac.pod,
                                   pmac.position);
      if (!up.has_value()) {
        drop(obs::DropReason::kNoUplink, frame, in_port);
        return;
      }
      send(*up, frame);
      return;
    }
    case Level::kAggregation: {
      if (pmac.pod == self.pod) {
        // Down to the edge at `position` (unique path below us): O(1)
        // index load from the FIB.
        const Fib& fib = this->fib();
        const std::int32_t p =
            pmac.position < fib.down_by_position.size()
                ? fib.down_by_position[pmac.position]
                : -1;
        if (p >= 0) {
          if (flight_recorder() != nullptr) {
            record_hop(obs::HopEvent::kFibLookup, frame,
                       static_cast<sim::PortId>(p), pmac.position);
          }
          send(static_cast<sim::PortId>(p), frame);
          return;
        }
        drop(obs::DropReason::kNoDownlink, frame, in_port);
        return;
      }
      const auto up = pick_up_port(parsed, frame, dst, pmac.pod,
                                   pmac.position);
      if (!up.has_value()) {
        drop(obs::DropReason::kNoUplink, frame, in_port);
        return;
      }
      send(*up, frame);
      return;
    }
    case Level::kCore: {
      const Fib& fib = this->fib();
      const std::int32_t p =
          pmac.pod < fib.down_by_pod.size() ? fib.down_by_pod[pmac.pod] : -1;
      if (p >= 0) {
        if (flight_recorder() != nullptr) {
          record_hop(obs::HopEvent::kFibLookup, frame,
                     static_cast<sim::PortId>(p), pmac.pod);
        }
        send(static_cast<sim::PortId>(p), frame);
        return;
      }
      drop(obs::DropReason::kNoPodPort, frame, in_port);
      return;
    }
    case Level::kUnknown:
      drop(obs::DropReason::kUnlocated, frame, in_port);
      return;
  }
}

void PortlandSwitch::deliver_to_local_host(const HostEntry& entry,
                                           const ParsedFrame& parsed,
                                           const sim::FramePtr& frame) {
  // Egress rewrite: PMAC back to the host's actual MAC (§3.2) — a single
  // buffer copy even when the ARP target MAC needs patching too.
  net::FrameRewrite rw;
  rw.eth_dst = entry.amac;
  if (parsed.arp.has_value()) rw.arp_target_mac = entry.amac;
  const auto rewritten = net::rewrite_frame(frame, rw);
  if (flight_recorder() != nullptr) {
    record_hop(obs::HopEvent::kEgressRewrite, rewritten, entry.port,
               entry.amac.to_u64());
  }
  send(entry.port, rewritten);
}

// ---------------------------------------------------------------------------
// Broadcast (loop-free, core-rooted; used only as ARP-miss fallback and for
// any residual host broadcast traffic)
// ---------------------------------------------------------------------------

std::optional<sim::PortId> PortlandSwitch::designated_up_port() const {
  const std::vector<sim::PortId>& ups = ldp_.up_ports();
  if (ups.empty()) return std::nullopt;
  return ups.front();  // lowest alive uplink
}

void PortlandSwitch::forward_broadcast(sim::PortId in_port, bool from_host,
                                       bool from_above,
                                       const sim::FramePtr& frame) {
  const SwitchLocator& self = ldp_.self();
  switch (self.level) {
    case Level::kEdge:
      if (from_host) {
        for (const sim::PortId p : ldp_.down_ports()) {
          if (p != in_port) send(p, frame);
        }
        if (const auto up = designated_up_port(); up.has_value()) {
          send(*up, frame);
        }
      } else if (from_above) {
        for (const sim::PortId p : ldp_.down_ports()) send(p, frame);
      }
      return;
    case Level::kAggregation:
      if (from_above) {
        for (const sim::PortId p : ldp_.down_ports()) send(p, frame);
      } else {
        if (const auto up = designated_up_port(); up.has_value()) {
          send(*up, frame);
        }
        for (const sim::PortId p : ldp_.down_ports()) {
          if (p != in_port) send(p, frame);
        }
      }
      return;
    case Level::kCore:
      for (const sim::PortId p : ldp_.down_ports()) {
        if (p != in_port) send(p, frame);
      }
      return;
    case Level::kUnknown:
      drop(obs::DropReason::kUnlocated, frame, in_port);
      return;
  }
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

void PortlandSwitch::forward_multicast(sim::PortId in_port, bool from_host,
                                       const ParsedFrame& parsed,
                                       const sim::FramePtr& frame) {
  if (!parsed.ipv4.has_value()) {
    drop(obs::DropReason::kMcastNoIp, frame, in_port);
    return;
  }
  const Ipv4Address group = parsed.ipv4->dst;
  const auto it = mcast_ports_.find(group);
  if (it == mcast_ports_.end()) {
    if (from_host && ldp_.self().level == Level::kEdge) {
      // First transmission from a local sender: ask the FM to graft us
      // into the group's tree. Packets drop until the install lands.
      if (mcast_sender_reported_.insert(group).second) {
        send_to_fm(McastSenderSeen{group});
      }
    }
    drop(obs::DropReason::kMcastNoEntry, frame, in_port);
    return;
  }
  it->second.for_each([&](std::size_t p) {
    if (p != in_port) send(static_cast<sim::PortId>(p), frame);
  });
}

// ---------------------------------------------------------------------------
// Proxy ARP (§3.3)
// ---------------------------------------------------------------------------

void PortlandSwitch::handle_host_arp(sim::PortId port,
                                     const ParsedFrame& parsed,
                                     const sim::FramePtr& frame) {
  const ArpMessage& arp = *parsed.arp;
  // ensure_host ran in handle_host_ingress, so the entry exists.
  const HostEntry& host = *host_table_.find_amac(parsed.eth.src);

  if (arp.is_gratuitous()) {
    // Boot/migration announcement: registration already refreshed by
    // ensure_host; PortLand never floods it (§3.3, §3.7).
    counters().add("garp_consumed");
    return;
  }

  if (arp.op == ArpOp::kRequest) {
    counters().add("arp_requests_intercepted");
    if (config_.arp_coalescing) {
      // Bounded negative cache: a recent FM "not found" for this target
      // answers locally with the same fallback the miss itself took, so
      // a retrying host costs the FM one query per TTL per edge.
      if (negative_arp_fresh(arp.target_ip)) {
        counters().add("arp_negative_hits");
        net::FrameRewrite rw;
        rw.eth_src = host.pmac.to_mac();
        rw.arp_sender_mac = host.pmac.to_mac();
        forward_broadcast(port, /*from_host=*/true, /*from_above=*/false,
                          net::rewrite_frame(frame, rw));
        return;
      }
      // Coalescer: a duplicate in-flight resolution rides the existing FM
      // query; the single answer fans out to every waiter.
      if (const auto in_flight = pending_query_for(arp.target_ip)) {
        counters().add("arp_coalesced");
        pending_arps_[*in_flight].waiters.push_back(
            ArpWaiter{port, arp.sender_mac, host.pmac.to_mac(), arp.sender_ip,
                      frame});
        return;
      }
    }
    const std::uint32_t query_id = next_query_id_++;
    PendingArp pending;
    pending.host_port = port;
    pending.requester_amac = arp.sender_mac;
    pending.requester_pmac = host.pmac.to_mac();
    pending.requester_ip = arp.sender_ip;
    pending.target = arp.target_ip;
    pending.original = frame;
    pending.timer = std::make_unique<sim::Timer>(sim());
    pending.timer->schedule_after(config_.arp_query_timeout, [this, query_id] {
      flood_arp_fallback(query_id);
    });
    pending_arps_.emplace(query_id, std::move(pending));
    const auto key = std::make_pair(arp.target_ip.value(), query_id);
    pending_by_target_.insert(
        std::lower_bound(pending_by_target_.begin(), pending_by_target_.end(),
                         key),
        key);
    send_to_fm(ArpQuery{query_id, arp.target_ip});
    return;
  }

  // Unicast ARP reply from a host (answering a broadcast-fallback
  // request): rewrite the sender's AMAC to its PMAC in both the Ethernet
  // and ARP headers, then forward like any unicast frame.
  net::FrameRewrite rw;
  rw.eth_src = host.pmac.to_mac();
  rw.arp_sender_mac = host.pmac.to_mac();
  forward_unicast(port, parsed.eth.dst, parsed, net::rewrite_frame(frame, rw),
                  /*redirect_depth=*/0);
}

void PortlandSwitch::on_arp_response(const ArpResponse& m) {
  const auto it = pending_arps_.find(m.query_id);
  if (it == pending_arps_.end()) return;  // timed out already
  PendingArp pending = std::move(it->second);
  pending_arps_.erase(it);
  unindex_pending_target(pending.target, m.query_id);
  pending.timer->cancel();

  if (!m.found) {
    // Fabric-manager miss: fall back to a loop-free broadcast of the
    // original request so the owner can answer directly, and remember the
    // miss so immediate retries stay off the FM.
    counters().add("arp_fallback_broadcasts");
    broadcast_pending_arp(pending);
    note_negative_arp(pending.target);
    return;
  }

  counters().add("arp_proxied_replies");
  const ArpMessage reply = ArpMessage::reply(
      m.pmac, m.ip, pending.requester_amac, pending.requester_ip);
  send(pending.host_port,
       sim::make_frame(net::build_arp_frame(pending.requester_amac,
                                            m.pmac, reply)));
  for (const ArpWaiter& waiter : pending.waiters) {
    counters().add("arp_proxied_replies");
    const ArpMessage fanned =
        ArpMessage::reply(m.pmac, m.ip, waiter.amac, waiter.ip);
    send(waiter.host_port,
         sim::make_frame(net::build_arp_frame(waiter.amac, m.pmac, fanned)));
  }
}

void PortlandSwitch::flood_arp_fallback(std::uint32_t query_id) {
  const auto it = pending_arps_.find(query_id);
  if (it == pending_arps_.end()) return;
  counters().add("arp_query_timeouts");
  PendingArp pending = std::move(it->second);
  pending_arps_.erase(it);
  unindex_pending_target(pending.target, query_id);
  broadcast_pending_arp(pending);
}

void PortlandSwitch::broadcast_pending_arp(const PendingArp& pending) {
  net::FrameRewrite rw;
  rw.eth_src = pending.requester_pmac;
  rw.arp_sender_mac = pending.requester_pmac;
  forward_broadcast(pending.host_port, /*from_host=*/true,
                    /*from_above=*/false,
                    net::rewrite_frame(pending.original, rw));
  for (const ArpWaiter& waiter : pending.waiters) {
    net::FrameRewrite wrw;
    wrw.eth_src = waiter.pmac;
    wrw.arp_sender_mac = waiter.pmac;
    forward_broadcast(waiter.host_port, /*from_host=*/true,
                      /*from_above=*/false,
                      net::rewrite_frame(waiter.original, wrw));
  }
}

std::optional<std::uint32_t> PortlandSwitch::pending_query_for(
    Ipv4Address target) const {
  const auto it = std::lower_bound(
      pending_by_target_.begin(), pending_by_target_.end(),
      std::make_pair(target.value(), std::uint32_t{0}));
  if (it == pending_by_target_.end() || it->first != target.value()) {
    return std::nullopt;
  }
  return it->second;
}

void PortlandSwitch::unindex_pending_target(Ipv4Address target,
                                            std::uint32_t query_id) {
  const auto it = std::lower_bound(
      pending_by_target_.begin(), pending_by_target_.end(),
      std::make_pair(target.value(), query_id));
  if (it != pending_by_target_.end() && it->first == target.value() &&
      it->second == query_id) {
    pending_by_target_.erase(it);
  }
}

bool PortlandSwitch::negative_arp_fresh(Ipv4Address ip) {
  if (config_.arp_negative_cache_entries == 0) return false;
  const auto it = std::lower_bound(
      arp_negative_.begin(), arp_negative_.end(), ip.value(),
      [](const NegativeArp& e, std::uint32_t v) { return e.ip < v; });
  if (it == arp_negative_.end() || it->ip != ip.value()) return false;
  if (it->expires <= sim().now()) {
    arp_negative_.erase(it);
    return false;
  }
  return true;
}

void PortlandSwitch::note_negative_arp(Ipv4Address ip) {
  if (!config_.arp_coalescing || config_.arp_negative_cache_entries == 0) {
    return;
  }
  const SimTime expires = sim().now() + config_.arp_negative_ttl;
  const auto it = std::lower_bound(
      arp_negative_.begin(), arp_negative_.end(), ip.value(),
      [](const NegativeArp& e, std::uint32_t v) { return e.ip < v; });
  if (it != arp_negative_.end() && it->ip == ip.value()) {
    it->expires = expires;
    return;
  }
  if (arp_negative_.size() >= config_.arp_negative_cache_entries) {
    // Bounded: displace the entry closest to expiry (often already dead).
    const auto victim = std::min_element(
        arp_negative_.begin(), arp_negative_.end(),
        [](const NegativeArp& a, const NegativeArp& b) {
          return a.expires < b.expires;
        });
    arp_negative_.erase(victim);
  }
  arp_negative_.insert(
      std::lower_bound(arp_negative_.begin(), arp_negative_.end(), ip.value(),
                       [](const NegativeArp& e, std::uint32_t v) {
                         return e.ip < v;
                       }),
      NegativeArp{ip.value(), expires});
}

void PortlandSwitch::send_garp_to_sender(MacAddress old_pmac,
                                         MacAddress sender_pmac) {
  // Correct the stale ARP cache of a host still using the old PMAC: a
  // unicast gratuitous ARP with the migrated host's new PMAC (§3.7).
  const auto it = redirects_.find(old_pmac);
  if (it == redirects_.end()) return;
  Redirect& redirect = it->second;
  if (!redirect.garp_sent_to.insert(sender_pmac).second) return;

  ArpMessage garp = ArpMessage::gratuitous(redirect.new_pmac, redirect.ip);
  const auto frame = sim::make_frame(
      net::build_arp_frame(sender_pmac, redirect.new_pmac, garp));
  const ParsedFrame& parsed = net::parsed_of(frame);
  counters().add("migration_garps_sent");
  forward_unicast(/*in_port=*/0, sender_pmac, parsed, frame,
                  /*redirect_depth=*/0);
}

// ---------------------------------------------------------------------------
// Host registration (PMAC assignment, §3.2)
// ---------------------------------------------------------------------------

HostEntry* PortlandSwitch::ensure_host(sim::PortId port, MacAddress amac,
                                       Ipv4Address ip_hint) {
  if (amac.is_multicast() || amac.is_zero()) return nullptr;
  const SwitchLocator& self = ldp_.self();
  assert(self.level == Level::kEdge);

  if (HostEntry* e = host_table_.find_amac(amac)) {
    bool reregister = false;
    if (e->port != port) {
      // Same edge switch, different port (local migration): new PMAC.
      e->port = port;
      std::uint16_t& vmid = vmid_counter(port);
      vmid = next_vmid(vmid);
      host_table_.rekey_pmac(
          *e, Pmac{self.pod, self.position, static_cast<std::uint8_t>(port),
                   vmid});
      reregister = true;
    }
    if (!ip_hint.is_zero() && e->ip != ip_hint) {
      e->ip = ip_hint;
      reregister = true;
    }
    if (reregister && !e->ip.is_zero()) {
      send_to_fm(HostRegister{e->ip, e->amac, e->pmac.to_mac(),
                              static_cast<std::uint16_t>(e->port)});
    }
    return e;
  }

  HostEntry e;
  e.amac = amac;
  e.ip = ip_hint;
  e.port = port;
  std::uint16_t& vmid = vmid_counter(port);
  vmid = next_vmid(vmid);
  e.pmac = Pmac{self.pod, self.position, static_cast<std::uint8_t>(port),
                vmid};
  counters().add("hosts_learned");
  if (!e.ip.is_zero()) {
    send_to_fm(HostRegister{e.ip, e.amac, e.pmac.to_mac(),
                            static_cast<std::uint16_t>(e.port)});
    // A returning migrant invalidates any redirect chain for its IP.
    for (auto rit = redirects_.begin(); rit != redirects_.end();) {
      rit = (rit->second.ip == e.ip) ? redirects_.erase(rit) : std::next(rit);
    }
  }
  return host_table_.insert(e);
}

std::optional<Pmac> PortlandSwitch::pmac_for(MacAddress amac) const {
  const HostEntry* e = host_table_.find_amac(amac);
  if (e == nullptr) return std::nullopt;
  return e->pmac;
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

void PortlandSwitch::send_to_fm(ControlBody body) {
  // Registry traffic goes straight to the owning FM shard endpoint when
  // the registry is sharded; everything else (and everything at shard
  // count 1) takes the classic primary address.
  SwitchId to = kFabricManagerId;
  if (config_.fm_shards > 1) {
    if (const auto* q = std::get_if<ArpQuery>(&body)) {
      to = kFmShardIdBase + fm_shard_of(q->ip, config_.fm_shards);
    } else if (const auto* reg = std::get_if<HostRegister>(&body)) {
      to = kFmShardIdBase + fm_shard_of(reg->ip, config_.fm_shards);
    }
  }
  control_->send(to, ControlMessage{id_, std::move(body)});
}

void PortlandSwitch::on_control(const ControlMessage& msg) {
  struct Dispatcher {
    PortlandSwitch& sw;
    void operator()(const PodAssignment& m) {
      sw.ldp_.handle_pod_assignment(m.pod);
    }
    void operator()(const ArpResponse& m) { sw.on_arp_response(m); }
    void operator()(const PruneUpdate& m) {
      // Any prune change retires the precomputed FIB (and with it every
      // flow-cache entry): the very next frame routes on the new tables.
      ++sw.prune_generation_;
      if (m.flush) {
        sw.prunes_.clear();
        sw.counters().add("prune_flushes");
      }
      for (const PruneEntry& e : m.entries) {
        const DstKey key{e.dst_pod, e.dst_position};
        if (e.add) {
          sw.prunes_[key].insert(e.avoid);
        } else {
          const auto it = sw.prunes_.find(key);
          if (it != sw.prunes_.end()) {
            it->second.erase(e.avoid);
            if (it->second.empty()) sw.prunes_.erase(it);
          }
        }
      }
      sw.counters().add("prune_updates_applied");
      if (obs::ConvergenceMonitor* monitor = sw.convergence_monitor()) {
        monitor->on_prune_install(
            static_cast<std::uint32_t>(sw.shard()), sw.sim().now(),
            sw.name().c_str());
      }
    }
    void operator()(const McastInstall& m) {
      PortSet ports;
      for (const std::uint16_t p : m.ports) {
        if (p < sw.port_count()) {
          ports.insert(p);
        } else {
          sw.counters().add("mcast_install_bad_port");
        }
      }
      sw.mcast_ports_[m.group] = ports;
      sw.counters().add("mcast_installs");
    }
    void operator()(const McastRemove& m) { sw.mcast_ports_.erase(m.group); }
    void operator()(const InvalidateHost& m) {
      // Remove the stale host entry and set up the trap-and-redirect flow.
      sw.host_table_.erase_by_pmac(m.old_pmac);
      sw.redirects_[m.old_pmac] = Redirect{m.new_pmac, m.ip, {}};
      // Compress chains: earlier redirects for the same IP now point at
      // the newest location.
      for (auto& [old_pmac, r] : sw.redirects_) {
        if (r.ip == m.ip) {
          r.new_pmac = m.new_pmac;
          r.garp_sent_to.clear();
        }
      }
      sw.counters().add("invalidations_applied");
    }
    // FM-bound messages a switch never receives:
    void operator()(const SwitchHello&) {}
    void operator()(const PodRequest&) {}
    void operator()(const HostRegister&) {}
    void operator()(const ArpQuery&) {}
    void operator()(const FaultNotify&) {}
    void operator()(const McastJoin&) {}
    void operator()(const McastLeave&) {}
    void operator()(const McastSenderSeen&) {}
    void operator()(const FmDelta&) {}  // replica-bound only
  };
  std::visit(Dispatcher{*this}, msg.body);
}

void PortlandSwitch::schedule_hello() {
  if (hello_pending_) return;
  hello_pending_ = true;
  hello_timer_.schedule_after(config_.hello_batch_delay, [this] {
    hello_pending_ = false;
    send_hello();
  });
}

void PortlandSwitch::send_hello() {
  send_to_fm(SwitchHello{ldp_.self(), ldp_.neighbor_entries()});
}

// ---------------------------------------------------------------------------
// LDP hooks
// ---------------------------------------------------------------------------

void PortlandSwitch::on_location_changed() {
  counters().add("location_updates");
  schedule_hello();
}

void PortlandSwitch::on_neighbor_event(sim::PortId port, SwitchId neighbor,
                                       bool lost) {
  const auto it = std::lower_bound(
      reported_down_.begin(), reported_down_.end(), port,
      [](const PortFault& f, sim::PortId p) { return f.port < p; });
  const bool present = it != reported_down_.end() && it->port == port;
  if (lost) {
    if (present) {
      it->neighbor = neighbor;
    } else {
      reported_down_.insert(it, PortFault{port, neighbor});
    }
    counters().add("neighbors_lost");
    if (obs::ConvergenceMonitor* monitor = convergence_monitor()) {
      monitor->on_neighbor_event(static_cast<std::uint32_t>(shard()),
                                 sim().now(), name().c_str(),
                                 /*lost=*/true);
    }
    send_to_fm(FaultNotify{static_cast<std::uint16_t>(port), neighbor,
                           /*link_up=*/false});
  } else if (present) {
    reported_down_.erase(it);
    counters().add("neighbors_recovered");
    if (obs::ConvergenceMonitor* monitor = convergence_monitor()) {
      monitor->on_neighbor_event(static_cast<std::uint32_t>(shard()),
                                 sim().now(), name().c_str(),
                                 /*lost=*/false);
    }
    send_to_fm(FaultNotify{static_cast<std::uint16_t>(port), neighbor,
                           /*link_up=*/true});
  }
  schedule_hello();
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

namespace {

void save_ports(sim::SnapshotWriter& w, const std::vector<sim::PortId>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const sim::PortId p : v) w.u64(p);
}

void restore_ports(sim::SnapshotReader& r, std::vector<sim::PortId>& v) {
  v.clear();
  const std::uint32_t n = r.u32();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) v.push_back(r.u64());
}

void save_port_set(sim::SnapshotWriter& w, const PortSet& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  s.for_each([&w](std::size_t p) { w.u64(p); });
}

PortSet restore_port_set(sim::SnapshotReader& r) {
  PortSet s;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    s.insert(static_cast<std::size_t>(r.u64()));
  }
  return s;
}

}  // namespace

void PortlandSwitch::save_state(sim::SnapshotWriter& w) const {
  ldp_.save_state(w);
  const auto rng = rng_.state();
  for (const std::uint64_t word : rng) w.u64(word);

  host_table_.save_state(w);
  if (legacy_tables_) {
    w.u32(static_cast<std::uint32_t>(next_vmid_map_.size()));
    for (const auto& [port, vmid] : next_vmid_map_) {
      w.u64(port);
      w.u16(vmid);
    }
  } else {
    w.u32(static_cast<std::uint32_t>(next_vmid_.size()));
    for (const std::uint16_t vmid : next_vmid_) w.u16(vmid);
  }

  w.u32(static_cast<std::uint32_t>(redirects_.size()));
  for (const auto& [old_pmac, redirect] : redirects_) {
    w.u64(old_pmac.to_u64());
    w.u64(redirect.new_pmac.to_u64());
    w.u32(redirect.ip.value());
    w.u32(static_cast<std::uint32_t>(redirect.garp_sent_to.size()));
    for (const MacAddress sender : redirect.garp_sent_to) {
      w.u64(sender.to_u64());
    }
  }

  w.u32(static_cast<std::uint32_t>(pending_arps_.size()));
  for (const auto& [query_id, pending] : pending_arps_) {
    w.u32(query_id);
    w.u64(pending.host_port);
    w.u64(pending.requester_amac.to_u64());
    w.u64(pending.requester_pmac.to_u64());
    w.u32(pending.requester_ip.value());
    w.u32(pending.target.value());
    w.frame(pending.original);
    pending.timer->save_state(w);
    w.u32(static_cast<std::uint32_t>(pending.waiters.size()));
    for (const ArpWaiter& waiter : pending.waiters) {
      w.u64(waiter.host_port);
      w.u64(waiter.amac.to_u64());
      w.u64(waiter.pmac.to_u64());
      w.u32(waiter.ip.value());
      w.frame(waiter.original);
    }
  }
  w.u32(next_query_id_);
  w.u32(static_cast<std::uint32_t>(arp_negative_.size()));
  for (const NegativeArp& e : arp_negative_) {
    w.u32(e.ip);
    w.i64(e.expires);
  }

  w.u32(static_cast<std::uint32_t>(prunes_.size()));
  for (const auto& [key, avoid] : prunes_) {
    w.u16(key.pod);
    w.u8(key.position);
    w.u32(static_cast<std::uint32_t>(avoid.size()));
    for (const SwitchId id : avoid) w.u64(id);
  }
  w.u64(prune_generation_);

  // Precomputed FIB: logically derived, but a flow-cache hit stamps
  // fib_.generation into hop records, so it must restore bit-exactly
  // rather than rebuild (a rebuild would also bump fib_rebuilds_).
  w.u64(fib_.ldp_gen);
  w.u64(fib_.prune_gen);
  w.u64(fib_.generation);
  save_ports(w, fib_.base_up);
  w.u32(static_cast<std::uint32_t>(fib_.pruned_up.size()));
  for (const PrunedRoute& route : fib_.pruned_up) {
    w.u32(route.key);
    save_ports(w, route.ports);
  }
  w.u32(static_cast<std::uint32_t>(fib_.pruned_up_map.size()));
  for (const auto& [key, ports] : fib_.pruned_up_map) {
    w.u16(key.pod);
    w.u8(key.position);
    save_ports(w, ports);
  }
  w.u32(static_cast<std::uint32_t>(fib_.down_by_position.size()));
  for (const std::int32_t p : fib_.down_by_position) {
    w.u32(static_cast<std::uint32_t>(p));
  }
  w.u32(static_cast<std::uint32_t>(fib_.down_by_pod.size()));
  for (const std::int32_t p : fib_.down_by_pod) {
    w.u32(static_cast<std::uint32_t>(p));
  }

  // Flow cache, compact build: sparse — only slots live for the current
  // FIB generation behave differently from empty ones (stale and empty
  // slots are both "miss + preferred victim"), so only they are saved.
  // The allocated flag is kept so the lazy assign happens at the same
  // point either way.
  w.u8(flow_slots_.empty() ? 0 : 1);
  std::uint32_t live_slots = 0;
  for (const FlowSlot& slot : flow_slots_) {
    if (slot.generation == fib_.generation) ++live_slots;
  }
  w.u32(live_slots);
  for (std::size_t i = 0; i < flow_slots_.size(); ++i) {
    if (flow_slots_[i].generation != fib_.generation) continue;
    w.u32(static_cast<std::uint32_t>(i));
    w.u64(flow_slots_[i].dst);
    w.u64(flow_slots_[i].flow_hash);
    w.u64(flow_slots_[i].port);
  }
  // Legacy build: all entries count toward the overflow-clear threshold,
  // so every one is saved (sorted for a deterministic image).
  {
    std::vector<std::pair<FlowCacheKey, FlowCacheEntry>> entries(
        flow_cache_.begin(), flow_cache_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.first.dst != b.first.dst
                           ? a.first.dst < b.first.dst
                           : a.first.flow_hash < b.first.flow_hash;
              });
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [key, entry] : entries) {
      w.u64(key.dst);
      w.u64(key.flow_hash);
      w.u64(entry.port);
      w.u64(entry.generation);
    }
  }
  w.u64(flow_cache_hits_);
  w.u64(flow_cache_misses_);
  w.u64(fib_rebuilds_);

  w.u32(static_cast<std::uint32_t>(mcast_ports_.size()));
  for (const auto& [group, ports] : mcast_ports_) {
    w.u32(group.value());
    save_port_set(w, ports);
  }
  w.u32(static_cast<std::uint32_t>(local_members_.size()));
  for (const auto& [group, ports] : local_members_) {
    w.u32(group.value());
    save_port_set(w, ports);
  }
  w.u32(static_cast<std::uint32_t>(mcast_sender_reported_.size()));
  for (const Ipv4Address group : mcast_sender_reported_) {
    w.u32(group.value());
  }

  w.u32(static_cast<std::uint32_t>(reported_down_.size()));
  for (const PortFault& fault : reported_down_) {
    w.u64(fault.port);
    w.u64(fault.neighbor);
  }

  hello_timer_.save_state(w);
  hello_periodic_.save_state(w);
  refresh_periodic_.save_state(w);
  w.u8(hello_pending_ ? 1 : 0);
  w.u64(spray_counter_);
}

void PortlandSwitch::restore_state(sim::SnapshotReader& r) {
  ldp_.restore_state(r);
  std::array<std::uint64_t, 4> rng{};
  for (std::uint64_t& word : rng) word = r.u64();
  rng_.set_state(rng);

  host_table_.restore_state(r);
  if (legacy_tables_) {
    next_vmid_map_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const sim::PortId port = r.u64();
      next_vmid_map_[port] = r.u16();
    }
  } else {
    const std::uint32_t n = r.u32();
    next_vmid_.assign(n, 0);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) next_vmid_[i] = r.u16();
  }

  redirects_.clear();
  const std::uint32_t n_redirects = r.u32();
  for (std::uint32_t i = 0; i < n_redirects && r.ok(); ++i) {
    const MacAddress old_pmac = MacAddress::from_u64(r.u64());
    Redirect redirect;
    redirect.new_pmac = MacAddress::from_u64(r.u64());
    redirect.ip = Ipv4Address(r.u32());
    const std::uint32_t n_senders = r.u32();
    for (std::uint32_t j = 0; j < n_senders && r.ok(); ++j) {
      redirect.garp_sent_to.insert(MacAddress::from_u64(r.u64()));
    }
    redirects_.emplace(old_pmac, std::move(redirect));
  }

  pending_arps_.clear();
  const std::uint32_t n_arps = r.u32();
  for (std::uint32_t i = 0; i < n_arps && r.ok(); ++i) {
    const std::uint32_t query_id = r.u32();
    PendingArp pending;
    pending.host_port = r.u64();
    pending.requester_amac = MacAddress::from_u64(r.u64());
    pending.requester_pmac = MacAddress::from_u64(r.u64());
    pending.requester_ip = Ipv4Address(r.u32());
    pending.target = Ipv4Address(r.u32());
    pending.original = r.frame();
    pending.timer = std::make_unique<sim::Timer>(sim());
    pending.timer->restore_at(
        r, [this, query_id] { flood_arp_fallback(query_id); });
    const std::uint32_t n_waiters = r.u32();
    pending.waiters.reserve(n_waiters);
    for (std::uint32_t j = 0; j < n_waiters && r.ok(); ++j) {
      ArpWaiter waiter;
      waiter.host_port = r.u64();
      waiter.amac = MacAddress::from_u64(r.u64());
      waiter.pmac = MacAddress::from_u64(r.u64());
      waiter.ip = Ipv4Address(r.u32());
      waiter.original = r.frame();
      pending.waiters.push_back(std::move(waiter));
    }
    pending_arps_.emplace(query_id, std::move(pending));
  }
  next_query_id_ = r.u32();
  // The coalescer index is derived from pending_arps_; rebuild it.
  pending_by_target_.clear();
  for (const auto& [query_id, pending] : pending_arps_) {
    pending_by_target_.emplace_back(pending.target.value(), query_id);
  }
  std::sort(pending_by_target_.begin(), pending_by_target_.end());
  arp_negative_.clear();
  const std::uint32_t n_negative = r.u32();
  arp_negative_.reserve(n_negative);
  for (std::uint32_t i = 0; i < n_negative && r.ok(); ++i) {
    NegativeArp e;
    e.ip = r.u32();
    e.expires = r.i64();
    arp_negative_.push_back(e);
  }

  prunes_.clear();
  const std::uint32_t n_prunes = r.u32();
  for (std::uint32_t i = 0; i < n_prunes && r.ok(); ++i) {
    DstKey key;
    key.pod = r.u16();
    key.position = r.u8();
    std::set<SwitchId>& avoid = prunes_[key];
    const std::uint32_t n_avoid = r.u32();
    for (std::uint32_t j = 0; j < n_avoid && r.ok(); ++j) {
      avoid.insert(r.u64());
    }
  }
  prune_generation_ = r.u64();

  fib_.ldp_gen = r.u64();
  fib_.prune_gen = r.u64();
  fib_.generation = r.u64();
  restore_ports(r, fib_.base_up);
  fib_.pruned_up.clear();
  const std::uint32_t n_routes = r.u32();
  fib_.pruned_up.reserve(n_routes);
  for (std::uint32_t i = 0; i < n_routes && r.ok(); ++i) {
    PrunedRoute route;
    route.key = r.u32();
    restore_ports(r, route.ports);
    fib_.pruned_up.push_back(std::move(route));
  }
  fib_.pruned_up_map.clear();
  const std::uint32_t n_route_map = r.u32();
  for (std::uint32_t i = 0; i < n_route_map && r.ok(); ++i) {
    DstKey key;
    key.pod = r.u16();
    key.position = r.u8();
    restore_ports(r, fib_.pruned_up_map[key]);
  }
  const std::uint32_t n_by_pos = r.u32();
  fib_.down_by_position.assign(n_by_pos, -1);
  for (std::uint32_t i = 0; i < n_by_pos && r.ok(); ++i) {
    fib_.down_by_position[i] = static_cast<std::int32_t>(r.u32());
  }
  const std::uint32_t n_by_pod = r.u32();
  fib_.down_by_pod.assign(n_by_pod, -1);
  for (std::uint32_t i = 0; i < n_by_pod && r.ok(); ++i) {
    fib_.down_by_pod[i] = static_cast<std::int32_t>(r.u32());
  }

  const bool slots_allocated = r.u8() != 0;
  flow_slots_.clear();
  if (slots_allocated && !legacy_tables_) {
    flow_slots_.assign(flow_slot_mask_ + 1, {});
  }
  const std::uint32_t n_live = r.u32();
  for (std::uint32_t i = 0; i < n_live && r.ok(); ++i) {
    const std::uint32_t idx = r.u32();
    FlowSlot slot;
    slot.dst = r.u64();
    slot.flow_hash = r.u64();
    slot.generation = fib_.generation;
    slot.port = r.u64();
    if (idx < flow_slots_.size()) flow_slots_[idx] = slot;
  }
  flow_cache_.clear();
  const std::uint32_t n_cache = r.u32();
  for (std::uint32_t i = 0; i < n_cache && r.ok(); ++i) {
    FlowCacheKey key;
    key.dst = r.u64();
    key.flow_hash = r.u64();
    FlowCacheEntry entry;
    entry.port = r.u64();
    entry.generation = r.u64();
    flow_cache_.emplace(key, entry);
  }
  flow_cache_hits_ = r.u64();
  flow_cache_misses_ = r.u64();
  fib_rebuilds_ = r.u64();

  mcast_ports_.clear();
  const std::uint32_t n_mcast = r.u32();
  for (std::uint32_t i = 0; i < n_mcast && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    mcast_ports_[group] = restore_port_set(r);
  }
  local_members_.clear();
  const std::uint32_t n_members = r.u32();
  for (std::uint32_t i = 0; i < n_members && r.ok(); ++i) {
    const Ipv4Address group(r.u32());
    local_members_[group] = restore_port_set(r);
  }
  mcast_sender_reported_.clear();
  const std::uint32_t n_senders = r.u32();
  for (std::uint32_t i = 0; i < n_senders && r.ok(); ++i) {
    mcast_sender_reported_.insert(Ipv4Address(r.u32()));
  }

  reported_down_.clear();
  const std::uint32_t n_faults = r.u32();
  reported_down_.reserve(n_faults);
  for (std::uint32_t i = 0; i < n_faults && r.ok(); ++i) {
    PortFault fault;
    fault.port = r.u64();
    fault.neighbor = r.u64();
    reported_down_.push_back(fault);
  }

  hello_timer_.restore_at(r, [this] {
    hello_pending_ = false;
    send_hello();
  });
  hello_periodic_.restore_state(r);
  refresh_periodic_.restore_state(r);
  hello_pending_ = r.u8() != 0;
  spray_counter_ = r.u64();

  // The control-plane endpoint registration from start() survives in a
  // forked image (same object); a fresh fabric restores after its own
  // start(), which re-registered it. Nothing to redo here.
}

// ---------------------------------------------------------------------------
// State accounting (E5)
// ---------------------------------------------------------------------------

std::size_t PortlandSwitch::prune_entry_count() const {
  std::size_t n = 0;
  for (const auto& [key, avoid] : prunes_) n += avoid.size();
  return n;
}

std::size_t PortlandSwitch::forwarding_state_size() const {
  return ldp_.neighbor_entries().size() + host_table_.size() +
         prune_entry_count() + mcast_ports_.size();
}

PortlandSwitch::TableBytes PortlandSwitch::table_bytes() const {
  TableBytes b;
  b.host_table = host_table_.bytes();

  b.fib = vector_bytes(fib_.base_up) + vector_bytes(fib_.down_by_position) +
          vector_bytes(fib_.down_by_pod);
  for (const auto& [key, ports] : fib_.pruned_up_map) {
    b.fib += sizeof(key) + kTreeNodeOverhead + vector_bytes(ports);
  }
  b.fib += vector_bytes(fib_.pruned_up);
  for (const PrunedRoute& r : fib_.pruned_up) b.fib += vector_bytes(r.ports);

  b.flow_cache = vector_bytes(flow_slots_) + unordered_map_bytes(flow_cache_);

  for (const auto& [key, avoid] : prunes_) {
    b.prunes += sizeof(key) + kTreeNodeOverhead + set_bytes(avoid);
  }

  b.multicast = map_bytes(mcast_ports_) + map_bytes(local_members_) +
                set_bytes(mcast_sender_reported_);

  b.other = (legacy_tables_ ? map_bytes(next_vmid_map_)
                            : vector_bytes(next_vmid_)) +
            vector_bytes(reported_down_) + map_bytes(redirects_) +
            vector_bytes(pending_by_target_) + vector_bytes(arp_negative_);
  return b;
}

}  // namespace portland::core
