// FmRegistry: the fabric manager's IP -> record table, rebuilt in the
// compact-slab style of core/host_table.h but open-addressed, because the
// FM's working set is the whole fabric (k^3/4 hosts at k=64 is 65k
// entries) and the proxy-ARP path (E6/E22) is read-mostly: lookups must
// be one hash + a short linear probe over a contiguous index, not a
// node-chasing unordered_map walk.
//
// Layout: records live in one contiguous slab vector; a power-of-two
// open-addressed index of u32 slot ids maps hash(ip) to slab positions.
// Erase back-fills the slab from the end (like HostTable) and leaves a
// tombstone in the index; the table rehashes when live + tombstone load
// passes 3/4. Iteration order of the slab is insertion order, which is
// NOT deterministic state by itself — callers that serialize or emit
// messages must use for_each_sorted (ascending IP), mirroring how the
// fabric manager has always written its host section sorted by IP.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/ipv4_address.h"
#include "common/memsize.h"

namespace portland::core {

template <typename Record>
class FmRegistry {
 public:
  struct Entry {
    Ipv4Address ip;
    Record rec;
  };

  /// Pre-sizes the slab and index for `hosts` entries so a boot storm
  /// never rehashes. Lazy like HostTable::reserve: nothing allocates
  /// until the first insert.
  void reserve(std::size_t hosts) { hint_ = hosts; }

  [[nodiscard]] std::size_t size() const { return slab_.size(); }
  [[nodiscard]] bool empty() const { return slab_.empty(); }

  [[nodiscard]] Record* find(Ipv4Address ip) {
    if (index_.empty()) return nullptr;
    const std::uint32_t slot = probe_find(ip);
    return slot == kEmpty ? nullptr : &slab_[slot].rec;
  }
  [[nodiscard]] const Record* find(Ipv4Address ip) const {
    return const_cast<FmRegistry*>(this)->find(ip);
  }

  /// Inserts or overwrites the record for `ip`. Returns the stored
  /// record; the pointer is valid until the next insert or erase.
  Record* insert_or_assign(Ipv4Address ip, const Record& rec) {
    maybe_grow();
    std::size_t pos = home(ip);
    std::size_t first_tombstone = kNpos;
    for (;; pos = (pos + 1) & mask_) {
      const std::uint32_t slot = index_[pos];
      if (slot == kEmpty) break;
      if (slot == kTombstone) {
        if (first_tombstone == kNpos) first_tombstone = pos;
        continue;
      }
      if (slab_[slot].ip == ip) {
        slab_[slot].rec = rec;
        return &slab_[slot].rec;
      }
    }
    if (first_tombstone != kNpos) {
      pos = first_tombstone;
      --tombstones_;
    }
    const auto slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(Entry{ip, rec});
    index_[pos] = slot;
    return &slab_[slot].rec;
  }

  /// Removes `ip`'s record. Returns false when absent. Invalidates
  /// record pointers (the vacated slab slot is back-filled from the end).
  bool erase(Ipv4Address ip) {
    if (index_.empty()) return false;
    const std::size_t pos = probe_pos(ip);
    if (pos == kNpos) return false;
    const std::uint32_t slot = index_[pos];
    index_[pos] = kTombstone;
    ++tombstones_;
    const auto last = static_cast<std::uint32_t>(slab_.size() - 1);
    if (slot != last) {
      const std::size_t last_pos = probe_pos(slab_[last].ip);
      assert(last_pos != kNpos);
      index_[last_pos] = slot;
      slab_[slot] = slab_[last];
    }
    slab_.pop_back();
    return true;
  }

  void clear() {
    slab_.clear();
    index_.clear();
    mask_ = 0;
    tombstones_ = 0;
  }

  /// Visits every entry in ascending IP order (determinism-relevant:
  /// snapshot layout and any message emission walk this way).
  template <typename Fn>
  void for_each_sorted(Fn&& fn) const {
    std::vector<std::uint32_t> order(slab_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return slab_[a].ip.value() < slab_[b].ip.value();
              });
    for (const std::uint32_t slot : order) fn(slab_[slot]);
  }

  [[nodiscard]] std::size_t bytes() const {
    return vector_bytes(slab_) + vector_bytes(index_);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFF'FFFF;
  static constexpr std::uint32_t kTombstone = 0xFFFF'FFFE;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  [[nodiscard]] std::size_t home(Ipv4Address ip) const {
    // Fibonacci-style multiplicative hash; the IP plan is dense in the
    // low octets, so the multiply spreads consecutive addresses.
    return (static_cast<std::size_t>(ip.value()) * 0x9E3779B9u) & mask_;
  }

  /// Index position holding `ip`, or kNpos.
  [[nodiscard]] std::size_t probe_pos(Ipv4Address ip) const {
    for (std::size_t pos = home(ip);; pos = (pos + 1) & mask_) {
      const std::uint32_t slot = index_[pos];
      if (slot == kEmpty) return kNpos;
      if (slot != kTombstone && slab_[slot].ip == ip) return pos;
    }
  }
  [[nodiscard]] std::uint32_t probe_find(Ipv4Address ip) const {
    const std::size_t pos = probe_pos(ip);
    return pos == kNpos ? kEmpty : index_[pos];
  }

  void maybe_grow() {
    const std::size_t want = slab_.size() + 1 + tombstones_;
    if (index_.empty() || want * 4 > index_.size() * 3) {
      std::size_t cap = 16;
      const std::size_t target =
          std::max(slab_.size() + 1, hint_ == 0 ? std::size_t{0} : hint_);
      while (cap * 3 < target * 4) cap <<= 1;
      rehash(cap);
    }
  }

  void rehash(std::size_t cap) {
    index_.assign(cap, kEmpty);
    mask_ = cap - 1;
    tombstones_ = 0;
    if (slab_.capacity() < slab_.size() + 1) {
      slab_.reserve(std::max(hint_, slab_.size() + 1));
    }
    for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
      std::size_t pos = home(slab_[slot].ip);
      while (index_[pos] != kEmpty) pos = (pos + 1) & mask_;
      index_[pos] = slot;
    }
  }

  std::size_t hint_ = 0;
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> index_;  // power-of-two, slot ids
  std::size_t mask_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace portland::core
