// PortlandSwitch: one switch of the fabric. A single class serves edge,
// aggregation, and core roles — the role is *discovered* by the embedded
// LdpAgent, never configured (requirement R2).
//
// Data plane:
//   * hierarchical PMAC forwarding — down by (pod, position, port) fields,
//     up via flow-hashed ECMP over the surviving uplinks (§3.2, §3.5);
//   * PMAC<->AMAC rewriting at edge ingress/egress so hosts stay
//     unmodified (§3.2);
//   * proxy ARP: edge switches intercept ARP requests, resolve them
//     through the fabric manager, and fall back to a loop-free
//     core-rooted broadcast on a miss (§3.3);
//   * multicast via FM-installed replication port sets (§3.6);
//   * migration support: invalidated PMACs are trapped, rewritten to the
//     host's new PMAC, and senders' stale caches corrected with unicast
//     gratuitous ARPs (§3.7).
//
// Control plane:
//   * LDP (location discovery + liveness),
//   * SwitchHello reports to the fabric manager,
//   * FaultNotify on LDM timeout; PruneUpdate application on reroutes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "obs/drop_reason.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "core/fabric_graph.h"
#include "core/host_table.h"
#include "core/ldp_agent.h"
#include "core/messages.h"
#include "core/pmac.h"
#include "core/port_set.h"
#include "net/packet.h"
#include "sim/device.h"

namespace portland::core {

class PortlandSwitch : public sim::Device {
 public:
  PortlandSwitch(sim::Simulator& sim, std::string name, SwitchId id,
                 std::size_t num_ports, ControlPlane& control,
                 PortlandConfig config, Rng rng);
  ~PortlandSwitch() override;

  void start() override;
  void handle_frame(sim::PortId in_port, const sim::FramePtr& frame) override;
  void handle_link_status(sim::PortId port, bool up) override;

  /// Checkpoint: LDP state, host/redirect/prune/multicast tables, the
  /// precomputed FIB and flow cache (a cache hit records the FIB
  /// generation in hop traces, so even derived state restores exactly),
  /// pending ARP queries with their timers, fault reports, rng.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  // --- inspection --------------------------------------------------------
  [[nodiscard]] SwitchId id() const { return id_; }
  [[nodiscard]] const SwitchLocator& locator() const { return ldp_.self(); }
  [[nodiscard]] const LdpAgent& ldp() const { return ldp_; }

  /// PMAC assigned to a local host AMAC (edge switches).
  [[nodiscard]] std::optional<Pmac> pmac_for(MacAddress amac) const;

  /// Host (PMAC/AMAC) table size — the state the paper argues stays O(k)
  /// per edge switch instead of O(total hosts).
  [[nodiscard]] std::size_t host_table_size() const {
    return host_table_.size();
  }
  /// Installed reroute (prune) entries.
  [[nodiscard]] std::size_t prune_entry_count() const;
  /// Installed multicast forwarding entries.
  [[nodiscard]] std::size_t multicast_entry_count() const {
    return mcast_ports_.size();
  }
  /// Total forwarding-state footprint in entries (neighbors + hosts +
  /// prunes + multicast) — compared against the baseline's MAC table in E5.
  [[nodiscard]] std::size_t forwarding_state_size() const;

  // --- fast-path introspection -------------------------------------------
  /// Exact-match flow-cache performance on the unicast path.
  [[nodiscard]] std::uint64_t flow_cache_hits() const {
    return flow_cache_hits_;
  }
  [[nodiscard]] std::uint64_t flow_cache_misses() const {
    return flow_cache_misses_;
  }
  /// Times the precomputed FIB was rebuilt (should track topology / prune
  /// events, never packet count).
  [[nodiscard]] std::uint64_t fib_rebuilds() const { return fib_rebuilds_; }
  /// Current FIB generation; flow-cache entries from older generations are
  /// dead on arrival.
  [[nodiscard]] std::uint64_t fib_generation() const {
    return fib_.generation;
  }

  /// Counted forwarding-state bytes by component (E19). Compact tables
  /// report exact vector footprints; legacy maps report estimated
  /// allocator footprints (see common/memsize.h).
  struct TableBytes {
    std::size_t host_table = 0;
    std::size_t fib = 0;
    std::size_t flow_cache = 0;
    std::size_t prunes = 0;
    std::size_t multicast = 0;
    std::size_t other = 0;  // vmid/fault vectors, redirects, pending ARPs
    [[nodiscard]] std::size_t total() const {
      return host_table + fib + flow_cache + prunes + multicast + other;
    }
  };
  [[nodiscard]] TableBytes table_bytes() const;

 private:
  /// A duplicate requester riding a coalesced in-flight ARP query: when
  /// the one FM answer arrives, each waiter gets its own proxied reply
  /// (or its own fallback broadcast on a miss).
  struct ArpWaiter {
    sim::PortId host_port = 0;
    MacAddress amac;
    MacAddress pmac;
    Ipv4Address ip;
    sim::FramePtr original;
  };
  struct PendingArp {
    sim::PortId host_port = 0;
    MacAddress requester_amac;
    MacAddress requester_pmac;
    Ipv4Address requester_ip;
    Ipv4Address target;
    sim::FramePtr original;
    std::unique_ptr<sim::Timer> timer;
    std::vector<ArpWaiter> waiters;
  };
  /// One bounded negative-cache entry: the FM answered "not found" for
  /// this IP at most arp_negative_ttl ago.
  struct NegativeArp {
    std::uint32_t ip = 0;
    SimTime expires = 0;
  };
  struct Redirect {
    MacAddress new_pmac;
    Ipv4Address ip;
    std::set<MacAddress> garp_sent_to;  // sender PMACs already corrected
  };

  /// One prune-applied uplink candidate array, keyed by the PMAC prefix
  /// (pod << 8 | position) — u32 order equals DstKey's (pod, position)
  /// lexicographic order, so the flat table sorts identically to the
  /// legacy map and lookups binary-search it.
  struct PrunedRoute {
    std::uint32_t key = 0;
    std::vector<sim::PortId> ports;
  };
  [[nodiscard]] static constexpr std::uint32_t dst_key_u32(
      std::uint16_t pod, std::uint8_t position) {
    return (static_cast<std::uint32_t>(pod) << 8) | position;
  }

  /// Precomputed forwarding tables, derived from the LDP neighbor table
  /// and the FM-installed prune sets. Rebuilt lazily when either input's
  /// generation moves (event-driven invalidation) — never per packet.
  struct Fib {
    // Input generations this build reflects. Start stale so the first
    // lookup builds.
    std::uint64_t ldp_gen = 0;
    std::uint64_t prune_gen = 0;
    /// Bumped at every rebuild; stamps flow-cache entries.
    std::uint64_t generation = 0;
    /// Live uplinks with no prune applied (the common case).
    std::vector<sim::PortId> base_up;
    /// Per-destination uplink candidate arrays with the avoid sets already
    /// subtracted (fine entries also fold in the pod-wide coarse set).
    /// Compact build: sorted flat vector; legacy build: the seed's map.
    std::vector<PrunedRoute> pruned_up;
    std::map<DstKey, std::vector<sim::PortId>> pruned_up_map;
    /// Aggregation: edge position -> down port (-1 = none).
    std::vector<std::int32_t> down_by_position;
    /// Core: pod -> down port (-1 = none).
    std::vector<std::int32_t> down_by_pod;
  };

  struct FlowCacheKey {
    std::uint64_t dst = 0;  // destination PMAC as u64
    std::uint64_t flow_hash = 0;
    friend bool operator==(const FlowCacheKey&, const FlowCacheKey&) = default;
  };
  struct FlowCacheKeyHash {
    std::size_t operator()(const FlowCacheKey& k) const {
      std::uint64_t x = k.dst ^ (k.flow_hash * 0x9E3779B97F4A7C15ull);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  struct FlowCacheEntry {
    sim::PortId port = 0;
    std::uint64_t generation = 0;  // FIB generation at insert
  };
  /// Legacy bound on cached flows per switch; on overflow the cache is
  /// dropped wholesale (entries regenerate in one miss each).
  static constexpr std::size_t kFlowCacheCap = 65536;

  /// Compact flow cache: a fixed open-addressed slot array. A slot is
  /// live only when its stamp equals the current FIB generation, so both
  /// "empty" (stamp 0 — generations start at 1) and "stale" need no
  /// separate bookkeeping and eviction is overwrite. Cache organization
  /// cannot change forwarding: a hit returns exactly what the miss path
  /// would recompute for the same FIB generation.
  struct FlowSlot {
    std::uint64_t dst = 0;
    std::uint64_t flow_hash = 0;
    std::uint64_t generation = 0;
    sim::PortId port = 0;
  };
  static constexpr std::size_t kFlowProbeWindow = 8;

  // --- ingress dispatch ---
  void handle_host_ingress(sim::PortId port, const net::ParsedFrame& parsed,
                           const sim::FramePtr& frame);
  void handle_fabric_ingress(sim::PortId port, const net::ParsedFrame& parsed,
                             const sim::FramePtr& frame);

  // --- forwarding ---
  void forward_unicast(sim::PortId in_port, MacAddress dst,
                       const net::ParsedFrame& parsed,
                       const sim::FramePtr& frame, int redirect_depth);
  void forward_broadcast(sim::PortId in_port, bool from_host, bool from_above,
                         const sim::FramePtr& frame);
  void forward_multicast(sim::PortId in_port, bool from_host,
                         const net::ParsedFrame& parsed,
                         const sim::FramePtr& frame);
  void deliver_to_local_host(const HostEntry& entry,
                             const net::ParsedFrame& parsed,
                             const sim::FramePtr& frame);
  [[nodiscard]] std::optional<sim::PortId> pick_up_port(
      const net::ParsedFrame& parsed, const sim::FramePtr& frame,
      MacAddress dst, std::uint16_t dst_pod, std::uint8_t dst_position) const;
  [[nodiscard]] std::optional<sim::PortId> designated_up_port() const;

  /// Counts a typed drop through its cached counter cell (no string
  /// lookup) and hands it to the flight recorder when one is attached.
  void drop(obs::DropReason reason, const sim::FramePtr& frame,
            sim::PortId port = 0);

  /// Returns the precomputed FIB, rebuilding first if an input changed.
  [[nodiscard]] const Fib& fib() const;
  void rebuild_fib() const;

  // --- proxy ARP ---
  void handle_host_arp(sim::PortId port, const net::ParsedFrame& parsed,
                       const sim::FramePtr& frame);
  void on_arp_response(const ArpResponse& m);
  void flood_arp_fallback(std::uint32_t query_id);
  void send_garp_to_sender(MacAddress old_pmac, MacAddress sender_pmac);
  /// Loop-free broadcast of the original request for the primary
  /// requester and every coalesced waiter (FM miss / query timeout).
  void broadcast_pending_arp(const PendingArp& pending);
  /// In-flight FM query for `target`, if any (coalescer index lookup).
  [[nodiscard]] std::optional<std::uint32_t> pending_query_for(
      Ipv4Address target) const;
  void unindex_pending_target(Ipv4Address target, std::uint32_t query_id);
  /// True while a negative-cache entry for `ip` is fresh (expired entries
  /// are dropped on probe).
  [[nodiscard]] bool negative_arp_fresh(Ipv4Address ip);
  void note_negative_arp(Ipv4Address ip);

  // --- host registration ---
  HostEntry* ensure_host(sim::PortId port, MacAddress amac,
                         Ipv4Address ip_hint);
  /// The per-port vmid counter of whichever table build is active.
  [[nodiscard]] std::uint16_t& vmid_counter(sim::PortId port) {
    return legacy_tables_ ? next_vmid_map_[port] : next_vmid_[port];
  }

  // --- control plane ---
  void on_control(const ControlMessage& msg);
  void send_to_fm(ControlBody body);
  void schedule_hello();
  void send_hello();
  /// Periodic soft-state refresh toward the fabric manager: host
  /// registrations, multicast membership/senders, and outstanding faults.
  /// This is what lets a cold fabric-manager replica rebuild everything.
  void send_soft_state_refresh();

  // --- LDP hooks ---
  void on_location_changed();
  void on_neighbor_event(sim::PortId port, SwitchId neighbor, bool lost);

  SwitchId id_;
  ControlPlane* control_;
  PortlandConfig config_;
  bool legacy_tables_;
  Rng rng_;
  LdpAgent ldp_;

  // Edge state. The host table is compact or legacy per config, and so
  // are the per-port vmid counters: a flat dense vector by default, the
  // seed's ordered map behind kLegacyMap (same values either way — the
  // split exists so E19 measures the honest before/after bytes).
  HostTable host_table_;
  std::vector<std::uint16_t> next_vmid_;          // compact build
  std::map<sim::PortId, std::uint16_t> next_vmid_map_;  // legacy build
  std::map<MacAddress, Redirect> redirects_;  // old pmac -> new location
  std::map<std::uint32_t, PendingArp> pending_arps_;
  std::uint32_t next_query_id_ = 1;
  /// Coalescer index over pending_arps_: (target IP, query id), sorted.
  /// Derived state — rebuilt from pending_arps_ on restore. Consulted
  /// only when config.arp_coalescing is on (duplicate IPs can appear
  /// when it is off; the index tolerates them).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pending_by_target_;
  /// Bounded negative ARP cache, sorted by IP; earliest expiry is evicted
  /// when full.
  std::vector<NegativeArp> arp_negative_;

  // Reroute state installed by the fabric manager. `prune_generation_` is
  // bumped on every PruneUpdate so the FIB knows to fold the new avoid
  // sets in.
  std::map<DstKey, std::set<SwitchId>> prunes_;
  std::uint64_t prune_generation_ = 1;

  // Data-plane fast path (logically derived state, hence mutable).
  // Compact build uses the fixed slot array (allocated on first insert);
  // legacy keeps the seed's unordered_map.
  mutable Fib fib_;
  mutable std::vector<FlowSlot> flow_slots_;
  std::size_t flow_slot_mask_ = 0;
  mutable std::unordered_map<FlowCacheKey, FlowCacheEntry, FlowCacheKeyHash>
      flow_cache_;
  mutable std::uint64_t flow_cache_hits_ = 0;
  mutable std::uint64_t flow_cache_misses_ = 0;
  mutable std::uint64_t fib_rebuilds_ = 0;

  // Multicast state: per-group port bitmaps (a switch has at most k
  // ports), iterated in ascending order exactly like the sets they
  // replaced.
  std::map<Ipv4Address, PortSet> mcast_ports_;  // FM-installed
  std::map<Ipv4Address, PortSet> local_members_;
  std::set<Ipv4Address> mcast_sender_reported_;

  // Fault reporting: the neighbors we reported lost, refreshed
  // periodically so a failed-over fabric manager relearns the fault
  // matrix. Sorted by port (refresh order is determinism-relevant) and
  // normally empty, so it costs nothing per switch at scale.
  struct PortFault {
    sim::PortId port = 0;
    SwitchId neighbor = kInvalidSwitchId;
  };
  std::vector<PortFault> reported_down_;

  /// Cached CounterSet cells, one per DropReason (kNone unused), so a
  /// per-frame drop bumps a pointer instead of a string-keyed map lookup.
  std::array<std::uint64_t*, obs::kDropReasonCount> drop_cells_{};

  sim::Timer hello_timer_;
  sim::PeriodicTimer hello_periodic_;
  sim::PeriodicTimer refresh_periodic_;
  bool hello_pending_ = false;
  // Round-robin counter for the kPacketSpray ECMP ablation.
  mutable std::uint64_t spray_counter_ = 0;
};

}  // namespace portland::core
