#include "core/multicast.h"

#include <algorithm>

namespace portland::core {

std::set<SwitchId> GroupState::participant_edges() const {
  std::set<SwitchId> out = senders;
  for (const auto& [edge, ports] : receivers) out.insert(edge);
  return out;
}

namespace {

/// Picks, for pod `pod`, an aggregation switch adjacent to `core` with
/// alive links to the core and to every edge in `edges`; kInvalidSwitchId
/// if none qualifies.
SwitchId pick_pod_agg(const FabricGraph& graph, SwitchId core,
                      std::uint16_t pod, const std::vector<SwitchId>& edges) {
  for (const SwitchId agg : graph.neighbors(core)) {
    const SwitchLocator* loc = graph.locator(agg);
    if (loc == nullptr || loc->level != Level::kAggregation ||
        loc->pod != pod) {
      continue;
    }
    if (!graph.link_alive(core, agg)) continue;
    const bool reaches_all = std::all_of(
        edges.begin(), edges.end(), [&](SwitchId e) {
          return graph.adjacent(agg, e) && graph.link_alive(agg, e);
        });
    if (reaches_all) return agg;
  }
  return kInvalidSwitchId;
}

}  // namespace

std::optional<MulticastTree> compute_multicast_tree(const FabricGraph& graph,
                                                    Ipv4Address group,
                                                    const GroupState& state) {
  const std::set<SwitchId> participants = state.participant_edges();
  if (participants.empty()) return std::nullopt;

  // Group participants by pod.
  std::map<std::uint16_t, std::vector<SwitchId>> by_pod;
  for (const SwitchId edge : participants) {
    const SwitchLocator* loc = graph.locator(edge);
    if (loc == nullptr || loc->level != Level::kEdge ||
        loc->pod == kUnknownPod) {
      return std::nullopt;  // not converged yet
    }
    by_pod[loc->pod].push_back(edge);
  }

  const std::vector<SwitchId> cores = graph.cores();
  if (cores.empty()) return std::nullopt;

  // Deterministic rendezvous-core choice: start from a group-derived index
  // and take the first core with alive coverage of every participant pod.
  const std::size_t start = group.value() % cores.size();
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const SwitchId core = cores[(start + i) % cores.size()];
    std::map<std::uint16_t, SwitchId> pod_agg;
    bool ok = true;
    for (const auto& [pod, edges] : by_pod) {
      const SwitchId agg = pick_pod_agg(graph, core, pod, edges);
      if (agg == kInvalidSwitchId) {
        ok = false;
        break;
      }
      pod_agg[pod] = agg;
    }
    if (!ok) continue;

    MulticastTree tree;
    tree.group = group;
    tree.core = core;
    // Port numbers come from the switches' own hello reports, which can be
    // momentarily asymmetric (e.g. right after a fabric-manager failover
    // only one endpoint has reported). A tree is only installable when
    // every hop is known from BOTH sides; otherwise try the next core and
    // let the next hello trigger a recompute.
    bool ports_known = true;
    auto add_port = [&](SwitchId sw, SwitchId toward) {
      const int p = graph.port_between(sw, toward);
      if (p < 0) {
        ports_known = false;
        return;
      }
      tree.ports[sw].insert(static_cast<std::uint16_t>(p));
    };
    for (const auto& [pod, agg] : pod_agg) {
      add_port(core, agg);
      add_port(agg, core);
      for (const SwitchId edge : by_pod.at(pod)) {
        add_port(agg, edge);
        add_port(edge, agg);
      }
    }
    if (!ports_known) continue;
    // Merge receiver host ports into the edge entries.
    for (const auto& [edge, host_ports] : state.receivers) {
      for (const std::uint16_t p : host_ports) tree.ports[edge].insert(p);
    }
    return tree;
  }
  return std::nullopt;
}

}  // namespace portland::core
