#include "core/messages.h"

#include "common/byte_io.h"
#include "net/ethernet.h"

namespace portland::core {

// ---------------------------------------------------------------------------
// LDP frames
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> LdpMessage::to_frame() const {
  std::vector<std::uint8_t> out;
  out.reserve(net::EthernetHeader::kSize + 24);
  ByteWriter w(out);
  // LDP frames are link-local: broadcast dst, synthetic src derived from
  // the switch id (switches have no real MAC of their own).
  net::EthernetHeader eth{MacAddress::broadcast(),
                          MacAddress::from_u64(from.switch_id & 0xFFFFFFFFFFFF),
                          net::to_u16(net::EtherType::kLdp)};
  eth.serialize(w);
  w.u8(static_cast<std::uint8_t>(type));
  from.serialize(w);
  w.u16(sender_port);
  w.u64(heard_id);
  w.u8(position);
  w.u32(nonce);
  return out;
}

std::optional<LdpMessage> LdpMessage::from_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  const net::EthernetHeader eth = net::EthernetHeader::deserialize(r);
  if (!r.ok() || !eth.is(net::EtherType::kLdp)) return std::nullopt;
  LdpMessage m;
  const std::uint8_t type = r.u8();
  m.from = SwitchLocator::deserialize(r);
  m.sender_port = r.u16();
  m.heard_id = r.u64();
  m.position = r.u8();
  m.nonce = r.u32();
  if (!r.ok()) return std::nullopt;
  if (type < 1 || type > 4) return std::nullopt;
  m.type = static_cast<LdpType>(type);
  return m;
}

// ---------------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------------

namespace {

enum class Tag : std::uint8_t {
  kSwitchHello = 1,
  kPodRequest,
  kPodAssignment,
  kHostRegister,
  kArpQuery,
  kArpResponse,
  kFaultNotify,
  kPruneUpdate,
  kMcastJoin,
  kMcastLeave,
  kMcastSenderSeen,
  kMcastInstall,
  kMcastRemove,
  kInvalidateHost,
  kFmDelta,
};

struct BodyWriter {
  ByteWriter& w;

  void operator()(const SwitchHello& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kSwitchHello));
    m.self.serialize(w);
    w.u16(static_cast<std::uint16_t>(m.neighbors.size()));
    for (const NeighborEntry& n : m.neighbors) {
      w.u16(n.port);
      n.neighbor.serialize(w);
    }
  }
  void operator()(const PodRequest&) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPodRequest));
  }
  void operator()(const PodAssignment& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPodAssignment));
    w.u16(m.pod);
  }
  void operator()(const HostRegister& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kHostRegister));
    m.ip.serialize(w);
    m.amac.serialize(w);
    m.pmac.serialize(w);
    w.u16(m.edge_port);
  }
  void operator()(const ArpQuery& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kArpQuery));
    w.u32(m.query_id);
    m.ip.serialize(w);
  }
  void operator()(const ArpResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kArpResponse));
    w.u32(m.query_id);
    m.ip.serialize(w);
    m.pmac.serialize(w);
    w.u8(m.found ? 1 : 0);
  }
  void operator()(const FaultNotify& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kFaultNotify));
    w.u16(m.port);
    w.u64(m.neighbor);
    w.u8(m.link_up ? 1 : 0);
  }
  void operator()(const PruneUpdate& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPruneUpdate));
    w.u8(m.flush ? 1 : 0);
    w.u16(static_cast<std::uint16_t>(m.entries.size()));
    for (const PruneEntry& e : m.entries) {
      w.u16(e.dst_pod);
      w.u8(e.dst_position);
      w.u64(e.avoid);
      w.u8(e.add ? 1 : 0);
    }
  }
  void operator()(const McastJoin& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kMcastJoin));
    m.group.serialize(w);
    w.u16(m.host_port);
  }
  void operator()(const McastLeave& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kMcastLeave));
    m.group.serialize(w);
    w.u16(m.host_port);
  }
  void operator()(const McastSenderSeen& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kMcastSenderSeen));
    m.group.serialize(w);
  }
  void operator()(const McastInstall& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kMcastInstall));
    m.group.serialize(w);
    w.u16(static_cast<std::uint16_t>(m.ports.size()));
    for (const std::uint16_t p : m.ports) w.u16(p);
  }
  void operator()(const McastRemove& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kMcastRemove));
    m.group.serialize(w);
  }
  void operator()(const InvalidateHost& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kInvalidateHost));
    m.ip.serialize(w);
    m.old_pmac.serialize(w);
    m.new_pmac.serialize(w);
  }
  void operator()(const FmDelta& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kFmDelta));
    w.u32(m.section);
    w.u64(m.version);
    w.u32(static_cast<std::uint32_t>(m.image.size()));
    w.bytes(m.image);
  }
};

}  // namespace

std::vector<std::uint8_t> serialize_control(const ControlMessage& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u64(msg.sender);
  std::visit(BodyWriter{w}, msg.body);
  return out;
}

std::optional<ControlMessage> parse_control(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  ControlMessage msg;
  msg.sender = r.u64();
  const std::uint8_t tag = r.u8();
  switch (static_cast<Tag>(tag)) {
    case Tag::kSwitchHello: {
      SwitchHello m;
      m.self = SwitchLocator::deserialize(r);
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        NeighborEntry e;
        e.port = r.u16();
        e.neighbor = SwitchLocator::deserialize(r);
        m.neighbors.push_back(e);
      }
      msg.body = std::move(m);
      break;
    }
    case Tag::kPodRequest:
      msg.body = PodRequest{};
      break;
    case Tag::kPodAssignment: {
      PodAssignment m;
      m.pod = r.u16();
      msg.body = m;
      break;
    }
    case Tag::kHostRegister: {
      HostRegister m;
      m.ip = Ipv4Address::deserialize(r);
      m.amac = MacAddress::deserialize(r);
      m.pmac = MacAddress::deserialize(r);
      m.edge_port = r.u16();
      msg.body = m;
      break;
    }
    case Tag::kArpQuery: {
      ArpQuery m;
      m.query_id = r.u32();
      m.ip = Ipv4Address::deserialize(r);
      msg.body = m;
      break;
    }
    case Tag::kArpResponse: {
      ArpResponse m;
      m.query_id = r.u32();
      m.ip = Ipv4Address::deserialize(r);
      m.pmac = MacAddress::deserialize(r);
      m.found = r.u8() != 0;
      msg.body = m;
      break;
    }
    case Tag::kFaultNotify: {
      FaultNotify m;
      m.port = r.u16();
      m.neighbor = r.u64();
      m.link_up = r.u8() != 0;
      msg.body = m;
      break;
    }
    case Tag::kPruneUpdate: {
      PruneUpdate m;
      m.flush = r.u8() != 0;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        PruneEntry e;
        e.dst_pod = r.u16();
        e.dst_position = r.u8();
        e.avoid = r.u64();
        e.add = r.u8() != 0;
        m.entries.push_back(e);
      }
      msg.body = std::move(m);
      break;
    }
    case Tag::kMcastJoin: {
      McastJoin m;
      m.group = Ipv4Address::deserialize(r);
      m.host_port = r.u16();
      msg.body = m;
      break;
    }
    case Tag::kMcastLeave: {
      McastLeave m;
      m.group = Ipv4Address::deserialize(r);
      m.host_port = r.u16();
      msg.body = m;
      break;
    }
    case Tag::kMcastSenderSeen: {
      McastSenderSeen m;
      m.group = Ipv4Address::deserialize(r);
      msg.body = m;
      break;
    }
    case Tag::kMcastInstall: {
      McastInstall m;
      m.group = Ipv4Address::deserialize(r);
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        m.ports.push_back(r.u16());
      }
      msg.body = std::move(m);
      break;
    }
    case Tag::kMcastRemove: {
      McastRemove m;
      m.group = Ipv4Address::deserialize(r);
      msg.body = m;
      break;
    }
    case Tag::kInvalidateHost: {
      InvalidateHost m;
      m.ip = Ipv4Address::deserialize(r);
      m.old_pmac = MacAddress::deserialize(r);
      m.new_pmac = MacAddress::deserialize(r);
      msg.body = m;
      break;
    }
    case Tag::kFmDelta: {
      FmDelta m;
      m.section = r.u32();
      m.version = r.u64();
      const std::uint32_t n = r.u32();
      const auto view = r.view(n);
      m.image.assign(view.begin(), view.end());
      msg.body = std::move(m);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return msg;
}

const char* control_type_name(const ControlBody& body) {
  struct Namer {
    const char* operator()(const SwitchHello&) const { return "switch_hello"; }
    const char* operator()(const PodRequest&) const { return "pod_request"; }
    const char* operator()(const PodAssignment&) const {
      return "pod_assignment";
    }
    const char* operator()(const HostRegister&) const {
      return "host_register";
    }
    const char* operator()(const ArpQuery&) const { return "arp_query"; }
    const char* operator()(const ArpResponse&) const { return "arp_response"; }
    const char* operator()(const FaultNotify&) const { return "fault_notify"; }
    const char* operator()(const PruneUpdate&) const { return "prune_update"; }
    const char* operator()(const McastJoin&) const { return "mcast_join"; }
    const char* operator()(const McastLeave&) const { return "mcast_leave"; }
    const char* operator()(const McastSenderSeen&) const {
      return "mcast_sender_seen";
    }
    const char* operator()(const McastInstall&) const {
      return "mcast_install";
    }
    const char* operator()(const McastRemove&) const { return "mcast_remove"; }
    const char* operator()(const InvalidateHost&) const {
      return "invalidate_host";
    }
    const char* operator()(const FmDelta&) const { return "fm_delta"; }
  };
  return std::visit(Namer{}, body);
}

}  // namespace portland::core
