// HostTable: the edge switch's AMAC<->PMAC host table, in two builds.
//
// Compact (default): entries live in one contiguous vector; two sorted
// slot-id index vectors (ordered by AMAC / by PMAC, keys derived from the
// entries themselves) give binary-search lookup at 4 bytes per index
// entry. An edge switch learns at most k/2 hosts (plus migrants), so the
// O(n) index shifts on insert are negligible while lookups stay
// cache-resident — this is the O(k)-state table the paper's §3 argument
// promises. Reservation is lazy: aggregation and core switches construct
// a HostTable but never insert, so they never allocate.
//
// Legacy: the seed's node-allocating std::map pair, kept behind
// PortlandConfig::Tables::kLegacyMap so the chaos soak can prove the
// compact build produces bit-identical frame traces, and so the E19 bench
// can measure the honest before/after bytes-per-host gap.
//
// Behavioral invariant either way: iteration (for_each) is ascending by
// AMAC, because the periodic soft-state refresh walks the table to emit
// HostRegister messages and their order is part of the deterministic
// event stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/mac_address.h"
#include "common/ipv4_address.h"
#include "common/memsize.h"
#include "core/pmac.h"
#include "sim/device.h"
#include "sim/snapshot.h"

namespace portland::core {

struct HostEntry {
  MacAddress amac;
  Pmac pmac;
  Ipv4Address ip;  // zero until first IP-bearing frame
  sim::PortId port = 0;
};

class HostTable {
 public:
  explicit HostTable(bool legacy = false) : legacy_(legacy) {}

  /// Sizing hint, applied lazily at the first insert — switches that
  /// never learn a host (aggregation, core) never allocate.
  void reserve(std::size_t hosts) { hint_ = hosts; }

  [[nodiscard]] std::size_t size() const {
    return legacy_ ? map_.size() : slots_.size();
  }

  [[nodiscard]] HostEntry* find_amac(MacAddress amac) {
    if (legacy_) {
      const auto it = map_.find(amac);
      return it == map_.end() ? nullptr : &it->second;
    }
    const std::uint32_t slot = index_find(by_amac_, kAmac, amac.to_u64());
    return slot == kNoSlot ? nullptr : &slots_[slot];
  }
  [[nodiscard]] const HostEntry* find_amac(MacAddress amac) const {
    return const_cast<HostTable*>(this)->find_amac(amac);
  }

  [[nodiscard]] const HostEntry* find_pmac(MacAddress pmac) const {
    if (legacy_) {
      const auto it = pmac_to_amac_.find(pmac);
      if (it == pmac_to_amac_.end()) return nullptr;
      return &map_.at(it->second);
    }
    const std::uint32_t slot = index_find(by_pmac_, kPmac, pmac.to_u64());
    return slot == kNoSlot ? nullptr : &slots_[slot];
  }

  /// Inserts a new host (AMAC must be absent). The returned pointer is
  /// valid until the next insert or erase.
  HostEntry* insert(const HostEntry& e) {
    if (legacy_) {
      HostEntry& stored = map_[e.amac] = e;
      pmac_to_amac_[e.pmac.to_mac()] = e.amac;
      return &stored;
    }
    if (slots_.capacity() == 0 && hint_ != 0) {
      slots_.reserve(hint_);
      by_amac_.reserve(hint_);
      by_pmac_.reserve(hint_);
    }
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(e);
    index_insert(by_amac_, kAmac, slot);
    index_insert(by_pmac_, kPmac, slot);
    return &slots_[slot];
  }

  /// Re-keys an entry's PMAC (local migration to a new port/vmid) and
  /// fixes the PMAC index. `e` must point into this table.
  void rekey_pmac(HostEntry& e, Pmac new_pmac) {
    if (legacy_) {
      pmac_to_amac_.erase(e.pmac.to_mac());
      e.pmac = new_pmac;
      pmac_to_amac_[new_pmac.to_mac()] = e.amac;
      return;
    }
    const auto slot = static_cast<std::uint32_t>(&e - slots_.data());
    index_erase(by_pmac_, kPmac, key_of(kPmac, slot));  // old key still live
    e.pmac = new_pmac;
    index_insert(by_pmac_, kPmac, slot);
  }

  /// Removes the host a PMAC maps to (migration invalidation). Returns
  /// false when the PMAC is unknown. Invalidates entry pointers (the
  /// vacated slot is back-filled from the end).
  bool erase_by_pmac(MacAddress pmac) {
    if (legacy_) {
      const auto it = pmac_to_amac_.find(pmac);
      if (it == pmac_to_amac_.end()) return false;
      map_.erase(it->second);
      pmac_to_amac_.erase(it);
      return true;
    }
    const std::uint32_t slot = index_find(by_pmac_, kPmac, pmac.to_u64());
    if (slot == kNoSlot) return false;
    index_erase(by_amac_, kAmac, key_of(kAmac, slot));
    index_erase(by_pmac_, kPmac, pmac.to_u64());
    const auto last = static_cast<std::uint32_t>(slots_.size() - 1);
    if (slot != last) {
      // Re-point the index entries of the entry being moved down.
      *index_ref(by_amac_, kAmac, key_of(kAmac, last)) = slot;
      *index_ref(by_pmac_, kPmac, key_of(kPmac, last)) = slot;
      slots_[slot] = slots_[last];
    }
    slots_.pop_back();
    return true;
  }

  /// Visits every host in ascending AMAC order (determinism-relevant).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (legacy_) {
      for (const auto& [amac, e] : map_) fn(e);
      return;
    }
    for (const std::uint32_t slot : by_amac_) fn(slots_[slot]);
  }

  [[nodiscard]] std::size_t bytes() const {
    if (legacy_) return map_bytes(map_) + map_bytes(pmac_to_amac_);
    return vector_bytes(slots_) + vector_bytes(by_amac_) +
           vector_bytes(by_pmac_);
  }

  /// Checkpoint: the compact build serializes slots and both index
  /// vectors verbatim (slot order is state — erase back-fills from the
  /// end); the legacy build serializes map entries and rebuilds the
  /// PMAC index.
  void save_state(sim::SnapshotWriter& w) const {
    const auto save_entry = [&w](const HostEntry& e) {
      w.u64(e.amac.to_u64());
      w.u64(e.pmac.to_mac().to_u64());
      w.u32(e.ip.value());
      w.u64(e.port);
    };
    if (legacy_) {
      w.u32(static_cast<std::uint32_t>(map_.size()));
      for (const auto& [amac, e] : map_) save_entry(e);
      return;
    }
    w.u32(static_cast<std::uint32_t>(slots_.size()));
    for (const HostEntry& e : slots_) save_entry(e);
    for (const std::uint32_t slot : by_amac_) w.u32(slot);
    for (const std::uint32_t slot : by_pmac_) w.u32(slot);
  }

  void restore_state(sim::SnapshotReader& r) {
    const auto read_entry = [&r] {
      HostEntry e;
      e.amac = MacAddress::from_u64(r.u64());
      e.pmac = Pmac::from_mac(MacAddress::from_u64(r.u64()));
      e.ip = Ipv4Address(r.u32());
      e.port = r.u64();
      return e;
    };
    const std::uint32_t n = r.u32();
    if (legacy_) {
      map_.clear();
      pmac_to_amac_.clear();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        const HostEntry e = read_entry();
        map_[e.amac] = e;
        pmac_to_amac_[e.pmac.to_mac()] = e.amac;
      }
      return;
    }
    slots_.clear();
    by_amac_.clear();
    by_pmac_.clear();
    slots_.reserve(n);
    by_amac_.reserve(n);
    by_pmac_.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      slots_.push_back(read_entry());
    }
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) by_amac_.push_back(r.u32());
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) by_pmac_.push_back(r.u32());
  }

 private:
  using Index = std::vector<std::uint32_t>;  // slot ids, sorted by key
  enum Kind { kAmac, kPmac };
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFF;

  [[nodiscard]] std::uint64_t key_of(Kind kind, std::uint32_t slot) const {
    const HostEntry& e = slots_[slot];
    return kind == kAmac ? e.amac.to_u64() : e.pmac.to_mac().to_u64();
  }
  [[nodiscard]] Index::iterator index_lower(Index& idx, Kind kind,
                                            std::uint64_t key) {
    return std::lower_bound(idx.begin(), idx.end(), key,
                            [this, kind](std::uint32_t slot, std::uint64_t k) {
                              return key_of(kind, slot) < k;
                            });
  }
  [[nodiscard]] std::uint32_t index_find(const Index& idx, Kind kind,
                                         std::uint64_t key) const {
    auto& mut = const_cast<Index&>(idx);
    const auto it = const_cast<HostTable*>(this)->index_lower(mut, kind, key);
    return (it != idx.end() && key_of(kind, *it) == key) ? *it : kNoSlot;
  }
  void index_insert(Index& idx, Kind kind, std::uint32_t slot) {
    idx.insert(index_lower(idx, kind, key_of(kind, slot)), slot);
  }
  void index_erase(Index& idx, Kind kind, std::uint64_t key) {
    const auto it = index_lower(idx, kind, key);
    if (it != idx.end() && key_of(kind, *it) == key) idx.erase(it);
  }
  /// Iterator to the index entry holding `key` (must exist).
  [[nodiscard]] Index::iterator index_ref(Index& idx, Kind kind,
                                          std::uint64_t key) {
    return index_lower(idx, kind, key);
  }

  bool legacy_;
  std::size_t hint_ = 0;
  // Compact build.
  std::vector<HostEntry> slots_;
  Index by_amac_;
  Index by_pmac_;
  // Legacy build (the seed's structures, node for node).
  std::map<MacAddress, HostEntry> map_;
  std::map<MacAddress, MacAddress> pmac_to_amac_;
};

}  // namespace portland::core
