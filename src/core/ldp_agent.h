// Location Discovery Protocol agent (paper §3.4).
//
// Every PortLand switch runs one LdpAgent. With zero configuration it
// discovers:
//   * its tree LEVEL — a port that carries host traffic but no LDMs marks
//     the switch as an edge; a switch hearing edge neighbors is an
//     aggregation switch; a switch hearing only aggregation neighbors on
//     more than half its ports is a core;
//   * its POSITION within the pod (edge switches only) — the edge proposes
//     a position to the pod's aggregation switches, which ack exactly one
//     owner per position;
//   * its POD number — the edge switch holding position 0 requests a pod
//     number from the fabric manager; everyone else in the pod adopts it
//     from neighbor LDMs (edge <-> aggregation adoption only; cores have
//     no pod).
//
// LDMs double as liveness probes: a switch port silent for
// `neighbor_timeout` (default 50 ms = 5 missed LDMs) is declared failed —
// this is the fabric's failure detector and the dominant term in the
// paper's ~65 ms convergence time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/config.h"
#include "core/messages.h"
#include "sim/device.h"
#include "sim/simulator.h"

namespace portland::core {

class LdpAgent {
 public:
  struct Hooks {
    /// Transmit an LDP frame out of a port.
    std::function<void(sim::PortId, std::vector<std::uint8_t>)> send_frame;
    /// Send a control message to the fabric manager.
    std::function<void(ControlBody)> send_to_fm;
    /// Our own locator changed (level, position, or pod resolved).
    std::function<void()> location_changed;
    /// The neighbor on `port` timed out (or reappeared: `lost == false`).
    std::function<void(sim::PortId, SwitchId, bool lost)> neighbor_event;
  };

  LdpAgent(sim::Simulator& sim, SwitchId id, std::size_t num_ports,
           const PortlandConfig& config, Hooks hooks, Rng rng);

  /// Arms the LDM and liveness timers (staggered start).
  void start();

  /// Feed an incoming LDP frame (EtherType kLdp).
  void handle_frame(sim::PortId port, std::span<const std::uint8_t> bytes);

  /// The switch saw a non-LDP frame on `port`; if no LDM neighbor lives
  /// there, the port is host-facing and we are an edge switch.
  void note_host_traffic(sim::PortId port);

  /// Pod number arrived from the fabric manager.
  void handle_pod_assignment(std::uint16_t pod);

  /// Expires the neighbor on `port` immediately (carrier-loss fast
  /// detection ablation; the paper's design waits for the LDM timeout).
  void expire_neighbor(sim::PortId port);

  // --- discovered state -------------------------------------------------
  [[nodiscard]] const SwitchLocator& self() const { return self_; }
  [[nodiscard]] bool located() const { return self_.located(); }

  [[nodiscard]] std::optional<SwitchLocator> neighbor(sim::PortId port) const;
  [[nodiscard]] bool is_host_port(sim::PortId port) const;

  /// True when `port` currently has an LDM neighbor (cheaper than
  /// neighbor(), which copies the locator — this is the per-frame check).
  [[nodiscard]] bool has_neighbor(sim::PortId port) const {
    return port < ports_.size() && ports_[port].neighbor.has_value();
  }

  /// True when the link behind `port` passes traffic in BOTH directions
  /// (neighbor fresh and our own LDMs are being echoed back). Only
  /// bidirectional ports participate in forwarding.
  [[nodiscard]] bool port_bidirectional(sim::PortId port) const;

  /// Ports whose live neighbor sits one level above us (edge: aggs;
  /// agg: cores). Sorted for deterministic ECMP. The reference stays
  /// valid until the next topology event; the list is rebuilt lazily on
  /// change, never per call — the steady-state data plane performs no
  /// allocation here.
  [[nodiscard]] const std::vector<sim::PortId>& up_ports() const;

  /// Ports whose live neighbor sits one level below us. Same caching
  /// contract as up_ports().
  [[nodiscard]] const std::vector<sim::PortId>& down_ports() const;

  /// Bumped on every event that can change up_ports()/down_ports() or any
  /// port's neighbor identity. The switch FIB stamps this to know when
  /// its precomputed tables are stale (event-driven invalidation).
  [[nodiscard]] std::uint64_t topology_generation() const {
    return topology_generation_;
  }

  /// Neighbor table for SwitchHello reports.
  [[nodiscard]] std::vector<NeighborEntry> neighbor_entries() const;

  /// Checkpoint: discovered location, per-port neighbor/liveness state,
  /// position negotiation, pending protocol timers, rng stream, stats.
  /// The port-list caches are rebuilt lazily after restore.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

  // --- stats --------------------------------------------------------------
  [[nodiscard]] std::uint64_t ldms_sent() const { return ldms_sent_; }
  [[nodiscard]] std::uint64_t ldms_received() const { return ldms_received_; }
  [[nodiscard]] std::uint64_t ldm_bytes_sent() const { return ldm_bytes_sent_; }
  /// Times the port-list caches were recomputed (should track topology
  /// events, not packets).
  [[nodiscard]] std::uint64_t port_cache_rebuilds() const {
    return port_cache_rebuilds_;
  }

 private:
  struct PortState {
    std::optional<SwitchLocator> neighbor;
    SimTime last_ldm = -1;
    /// Last time the neighbor's LDM echoed *our* switch id back — evidence
    /// the direction we transmit on still works (unidirectional-failure
    /// detection).
    SimTime last_echo = -1;
    bool host_seen = false;
    bool reported_down = false;  // FaultNotify(down) outstanding
    bool echo_lost = false;      // reverse direction declared dead
  };

  void send_ldms();
  void liveness_sweep();
  /// Marks the cached port lists stale and bumps topology_generation().
  void invalidate_topology();
  void rebuild_port_caches() const;
  void maybe_infer_level();
  void adopt_pod(const SwitchLocator& nbr);
  void start_position_negotiation();
  void propose_position();
  void handle_proposal(sim::PortId port, const LdpMessage& m);
  void handle_vote(const LdpMessage& m);
  void maybe_request_pod();
  void set_level(Level level);
  [[nodiscard]] std::size_t half() const { return num_ports_ / 2; }

  sim::Simulator* sim_;
  PortlandConfig config_;
  Hooks hooks_;
  Rng rng_;
  std::size_t num_ports_;

  SwitchLocator self_;
  std::vector<PortState> ports_;

  // Allocation-free accessor caches (see up_ports()).
  std::uint64_t topology_generation_ = 1;
  mutable bool port_caches_dirty_ = true;
  mutable std::vector<sim::PortId> up_cache_;
  mutable std::vector<sim::PortId> down_cache_;
  mutable std::uint64_t port_cache_rebuilds_ = 0;

  // Edge-side position negotiation.
  bool position_confirmed_ = false;
  std::uint8_t proposed_position_ = kUnknownPosition;
  std::uint32_t proposal_nonce_ = 0;
  std::set<SwitchId> proposal_pending_;  // aggs yet to ack
  std::set<std::uint8_t> positions_nacked_;
  sim::Timer position_timer_;

  // Aggregation-side position reservations: position -> owning edge.
  std::map<std::uint8_t, SwitchId> position_owners_;

  // Pod acquisition.
  bool pod_requested_ = false;
  sim::Timer pod_timer_;

  sim::PeriodicTimer ldm_timer_;
  sim::PeriodicTimer sweep_timer_;

  std::uint64_t ldms_sent_ = 0;
  std::uint64_t ldms_received_ = 0;
  std::uint64_t ldm_bytes_sent_ = 0;
};

}  // namespace portland::core
