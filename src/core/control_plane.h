// The out-of-band control network connecting every switch to the fabric
// manager (paper §3.1: "a separate control network is feasible at modest
// cost"). Modeled as a message channel with configurable one-way latency.
//
// Every message is serialized to bytes on send and parsed on delivery —
// both for fidelity and so the control-overhead experiment (E7) counts
// true message and byte volumes, broken down by message type.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/stats.h"
#include "common/units.h"
#include "core/messages.h"
#include "sim/simulator.h"

namespace portland::core {

class ControlPlane : public sim::DataEventOwner {
 public:
  using Handler = std::function<void(const ControlMessage&)>;

  ControlPlane(sim::Simulator& sim, SimDuration one_way_latency)
      : sim_(&sim), latency_(one_way_latency) {
    // Deterministic registration: the control plane is constructed at the
    // same point of fabric setup in any process, so its data-owner id
    // resolves serialized in-flight control messages across a restore.
    sim_->register_data_owner(this);
  }

  /// Registers the endpoint for control address `id` (a switch id or
  /// kFabricManagerId). Re-registering replaces the handler.
  void register_endpoint(SwitchId id, Handler handler) {
    endpoints_[id] = std::move(handler);
  }

  void unregister_endpoint(SwitchId id) { endpoints_.erase(id); }

  /// Pre-sizes the endpoint tables for the expected switch count (plus
  /// the fabric manager), avoiding rehash churn during fabric wiring.
  void reserve(std::size_t endpoints) {
    endpoints_.reserve(endpoints);
    shard_hints_.reserve(endpoints);
  }

  /// Tells the control plane which event shard `id`'s handler runs on, so
  /// deliveries land on the owning shard in parallel runs. Unhinted
  /// endpoints fall back to the (serialized) barrier queue. Call during
  /// fabric wiring, never mid-run.
  void set_endpoint_shard(SwitchId id, sim::ShardId shard) {
    shard_hints_[id] = shard;
  }

  /// Sends `msg` to endpoint `to`; delivered after the one-way latency
  /// plus `extra_delay` (used to model fabric-manager processing and
  /// per-switch flow-installation costs). Messages to unknown endpoints
  /// are counted and dropped.
  void send(SwitchId to, const ControlMessage& msg,
            SimDuration extra_delay = 0);

  /// Delivers one in-flight control message (arg = destination id, bytes
  /// = the serialized message). Scheduled by send(); serializable, so
  /// pending control traffic survives a snapshot.
  void execute_data_event(std::uint32_t kind, std::uint64_t arg,
                          const sim::FramePtr& frame,
                          const sim::FrameBytes& bytes) override;

  /// Checkpoint: totals and per-type counters. Handlers and shard hints
  /// are construction-time wiring and are not serialized.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

  [[nodiscard]] std::uint64_t messages_sent() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return bytes_sent_;
  }

  /// Message and byte counts per control type ("<type>" and "<type>_bytes").
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  [[nodiscard]] CounterSet& counters() { return counters_; }

  [[nodiscard]] SimDuration latency() const { return latency_; }

 private:
  sim::Simulator* sim_;
  SimDuration latency_;
  std::unordered_map<SwitchId, Handler> endpoints_;
  std::unordered_map<SwitchId, sim::ShardId> shard_hints_;
  /// Guards the counters: switches on different shards send concurrently
  /// during parallel windows. Uncontended in classic mode.
  mutable std::mutex mutex_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  CounterSet counters_;
};

}  // namespace portland::core
