// The out-of-band control network connecting every switch to the fabric
// manager (paper §3.1: "a separate control network is feasible at modest
// cost"). Modeled as a message channel with configurable one-way latency.
//
// Every message is serialized to bytes on send and parsed on delivery —
// both for fidelity and so the control-overhead experiment (E7) counts
// true message and byte volumes, broken down by message type.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/stats.h"
#include "common/units.h"
#include "core/messages.h"
#include "sim/simulator.h"

namespace portland::core {

class ControlPlane {
 public:
  using Handler = std::function<void(const ControlMessage&)>;

  ControlPlane(sim::Simulator& sim, SimDuration one_way_latency)
      : sim_(&sim), latency_(one_way_latency) {}

  /// Registers the endpoint for control address `id` (a switch id or
  /// kFabricManagerId). Re-registering replaces the handler.
  void register_endpoint(SwitchId id, Handler handler) {
    endpoints_[id] = std::move(handler);
  }

  void unregister_endpoint(SwitchId id) { endpoints_.erase(id); }

  /// Sends `msg` to endpoint `to`; delivered after the one-way latency
  /// plus `extra_delay` (used to model fabric-manager processing and
  /// per-switch flow-installation costs). Messages to unknown endpoints
  /// are counted and dropped.
  void send(SwitchId to, const ControlMessage& msg,
            SimDuration extra_delay = 0);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Message and byte counts per control type ("<type>" and "<type>_bytes").
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  [[nodiscard]] CounterSet& counters() { return counters_; }

  [[nodiscard]] SimDuration latency() const { return latency_; }

 private:
  sim::Simulator* sim_;
  SimDuration latency_;
  std::unordered_map<SwitchId, Handler> endpoints_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  CounterSet counters_;
};

}  // namespace portland::core
