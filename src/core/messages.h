// PortLand protocol messages.
//
// Two families:
//   1. LDP frames — link-local Location Discovery Messages and the
//      position-negotiation handshake, carried on the wire between
//      adjacent switches with EtherType kLdp (paper §3.4).
//   2. Control messages — switch <-> fabric-manager traffic carried on the
//      out-of-band control network: registrations, proxy-ARP queries,
//      fault notifications, reroute (prune) updates, multicast state, and
//      VM-migration invalidations (paper §3.1, §3.3, §3.6, §3.7).
//
// Everything serializes to bytes: LDP because it rides simulated links,
// control messages so the control-plane overhead experiment (E7) can count
// real message sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/ipv4_address.h"
#include "common/mac_address.h"
#include "core/locator.h"

namespace portland::core {

// ===========================================================================
// LDP frames
// ===========================================================================

enum class LdpType : std::uint8_t {
  kLdm = 1,              // periodic location discovery message / keepalive
  kProposePosition = 2,  // edge -> agg: claim a position within the pod
  kPositionAck = 3,      // agg -> edge: position granted
  kPositionNack = 4,     // agg -> edge: position taken, pick another
};

struct LdpMessage {
  LdpType type = LdpType::kLdm;
  /// Sender's current view of its own location.
  SwitchLocator from;
  /// Port the sender transmitted on.
  std::uint16_t sender_port = 0;
  /// Echo evidence: the switch id last heard (within the liveness
  /// timeout) on the port this LDM leaves through; kInvalidSwitchId when
  /// nothing fresh. A receiver that stops seeing its own id echoed knows
  /// the *reverse* direction is dead — this is how unidirectional
  /// failures are detected (three-way liveness, as in LLDP/BFD).
  SwitchId heard_id = kInvalidSwitchId;
  /// kProposePosition / kPositionAck / kPositionNack: the position in play.
  std::uint8_t position = kUnknownPosition;
  /// Proposal nonce, echoed in acks/nacks.
  std::uint32_t nonce = 0;

  /// Builds the complete Ethernet frame (EtherType kLdp, broadcast dst).
  [[nodiscard]] std::vector<std::uint8_t> to_frame() const;

  /// Parses a whole frame previously built by to_frame().
  [[nodiscard]] static std::optional<LdpMessage> from_frame(
      std::span<const std::uint8_t> frame);
};

// ===========================================================================
// Control-plane messages
// ===========================================================================

/// Well-known control-plane address of the fabric manager.
constexpr SwitchId kFabricManagerId = 1;

/// Well-known control-plane address of the hot-standby FM replica
/// (registered only when PortlandConfig::fm_replica is on).
constexpr SwitchId kFmReplicaId = 2;

/// First control-plane address of the FM's registry shards: shard s
/// answers at kFmShardIdBase + s (registered only when fm_shards > 1).
constexpr SwitchId kFmShardIdBase = 3;

/// Which registry shard owns `ip`, for `shards` shards. The same
/// Fibonacci multiplicative hash the registry itself probes with, so the
/// shard split is uniform even though the fabric's IP plan is dense in
/// the low octets.
[[nodiscard]] constexpr std::size_t fm_shard_of(Ipv4Address ip,
                                                std::size_t shards) {
  if (shards <= 1) return 0;
  // Keep the product's high half: the multiply mixes upward, so the low
  // bits of (ip * phi) are still just the low bits of ip — reducing those
  // mod a small shard count would leave shards empty under the dense plan.
  return ((static_cast<std::uint64_t>(ip.value()) * 0x9E3779B9u) >> 24) %
         shards;
}

/// One neighbor-table entry reported in a SwitchHello.
struct NeighborEntry {
  std::uint16_t port = 0;
  SwitchLocator neighbor;

  friend bool operator==(const NeighborEntry&, const NeighborEntry&) = default;
};

/// Switch -> FM: location + neighbor table, on every change and as a
/// periodic keepalive. The FM builds its topology view from these.
struct SwitchHello {
  SwitchLocator self;
  std::vector<NeighborEntry> neighbors;
};

/// Edge (position 0) -> FM: request a pod number for my pod.
struct PodRequest {};

/// FM -> switch: pod number assignment.
struct PodAssignment {
  std::uint16_t pod = kUnknownPod;
};

/// Edge -> FM: host (ip, amac, pmac) appeared behind me. A register for an
/// IP already mapped elsewhere is how the FM detects VM migration.
struct HostRegister {
  Ipv4Address ip;
  MacAddress amac;
  MacAddress pmac;
  std::uint16_t edge_port = 0;
};

/// Edge -> FM: proxy-ARP lookup.
struct ArpQuery {
  std::uint32_t query_id = 0;
  Ipv4Address ip;
};

/// FM -> edge: proxy-ARP answer. `found == false` directs the edge to fall
/// back to a loop-free broadcast of the original request.
struct ArpResponse {
  std::uint32_t query_id = 0;
  Ipv4Address ip;
  MacAddress pmac;
  bool found = false;
};

/// Switch -> FM: liveness of the link behind `port` changed (detected by
/// LDM timeout, or carrier in the fast-detection ablation).
struct FaultNotify {
  std::uint16_t port = 0;
  SwitchId neighbor = kInvalidSwitchId;
  bool link_up = false;
};

/// One reroute rule: for traffic to (dst_pod, dst_position), do not use a
/// next hop whose switch id is `avoid`. dst_position == kUnknownPosition
/// means "the whole pod".
struct PruneEntry {
  std::uint16_t dst_pod = kUnknownPod;
  std::uint8_t dst_position = kUnknownPosition;
  SwitchId avoid = kInvalidSwitchId;
  bool add = true;  // false = remove (link repaired)

  friend bool operator==(const PruneEntry&, const PruneEntry&) = default;
};

/// FM -> switch: apply these reroute rules (paper: "the fabric manager
/// informs all affected switches of the failure, which then individually
/// recalculate their forwarding tables").
struct PruneUpdate {
  /// When true the switch clears all installed prunes before applying
  /// `entries` — sent by a freshly started (failed-over) fabric manager so
  /// stale reroutes from its predecessor cannot linger (§3.1 soft state).
  bool flush = false;
  std::vector<PruneEntry> entries;
};

/// Edge -> FM: a host behind `host_port` joined/left `group`.
struct McastJoin {
  Ipv4Address group;
  std::uint16_t host_port = 0;
};
struct McastLeave {
  Ipv4Address group;
  std::uint16_t host_port = 0;
};

/// Edge -> FM: a local host transmits to `group`; graft me into the tree.
struct McastSenderSeen {
  Ipv4Address group;
};

/// FM -> switch: forwarding set for `group` (replicate to every listed
/// port except the ingress port). Replaces any previous entry.
struct McastInstall {
  Ipv4Address group;
  std::vector<std::uint16_t> ports;
};

/// FM -> switch: remove the group's forwarding entry.
struct McastRemove {
  Ipv4Address group;
};

/// FM -> old edge after a migration: trap frames addressed to `old_pmac`,
/// rewrite them to `new_pmac`, and unicast a gratuitous ARP correcting
/// stale caches back to each sender (paper §3.7).
struct InvalidateHost {
  Ipv4Address ip;
  MacAddress old_pmac;
  MacAddress new_pmac;
};

/// FM (primary / registry shard) -> kFmReplicaId: one section of FM state
/// serialized with the snapshot plumbing. Section 0 is the primary's core
/// state (topology view, pods, prunes, multicast); section 1 + s is
/// registry shard s. `version` increments per section so the replica can
/// discard reordered stale images (control delivery is FIFO per sender,
/// so in practice versions only move forward).
struct FmDelta {
  std::uint32_t section = 0;
  std::uint64_t version = 0;
  std::vector<std::uint8_t> image;
};

using ControlBody =
    std::variant<SwitchHello, PodRequest, PodAssignment, HostRegister,
                 ArpQuery, ArpResponse, FaultNotify, PruneUpdate, McastJoin,
                 McastLeave, McastSenderSeen, McastInstall, McastRemove,
                 InvalidateHost, FmDelta>;

struct ControlMessage {
  /// Control-plane address of the sender (switch id or kFabricManagerId).
  SwitchId sender = kInvalidSwitchId;
  ControlBody body;
};

/// Serializes a control message to bytes (type tag + fields).
[[nodiscard]] std::vector<std::uint8_t> serialize_control(
    const ControlMessage& msg);

/// Parses bytes produced by serialize_control.
[[nodiscard]] std::optional<ControlMessage> parse_control(
    std::span<const std::uint8_t> bytes);

/// Human-readable tag of the body type (for counters and logs).
[[nodiscard]] const char* control_type_name(const ControlBody& body);

}  // namespace portland::core
