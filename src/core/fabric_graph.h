// The fabric manager's soft-state topology view (paper §3.1: network
// configuration + fault matrix).
//
// Built entirely from SwitchHello reports (locators + neighbor tables) and
// FaultNotify events (the fault matrix). From this view the FM computes,
// per destination, which next-hop switches each forwarding switch must
// avoid — the `PruneEntry` sets pushed to "affected switches" after a
// failure (paper §3.6).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/messages.h"

namespace portland::sim {
class SnapshotWriter;
class SnapshotReader;
}  // namespace portland::sim

namespace portland::core {

/// Key identifying a destination whose reachability a fault can restrict:
/// a specific edge locator (pod, position) or a whole pod
/// (position == kUnknownPosition).
struct DstKey {
  std::uint16_t pod = kUnknownPod;
  std::uint8_t position = kUnknownPosition;

  friend bool operator==(const DstKey&, const DstKey&) = default;
  friend bool operator<(const DstKey& a, const DstKey& b) {
    if (a.pod != b.pod) return a.pod < b.pod;
    return a.position < b.position;
  }
};

/// For one destination key: per affected switch, the set of next-hop
/// switch ids to avoid.
using PruneMap = std::map<SwitchId, std::set<SwitchId>>;

/// What a SwitchHello actually changed in the FM's view. `changed` is the
/// raw delta (locator or reported adjacency differs — callers that mirror
/// ports, e.g. multicast install, re-derive on this). `routing_changed` is
/// the *effective* delta: locator, or the set of adjacent links that are
/// also alive in the fault matrix. A hello that merely withdraws adjacency
/// for a link the fault matrix already killed (the normal carrier-loss
/// ordering: FaultNotify first, hello second) leaves routing untouched, so
/// prune recomputation can be skipped.
struct HelloDelta {
  bool changed = false;
  bool routing_changed = false;
};

class FabricGraph {
 public:
  /// Ingests a switch's location + adjacency report. Newly reported links
  /// default to alive. See HelloDelta for what the two flags mean.
  HelloDelta apply_hello(SwitchId id, const SwitchHello& hello);

  /// Marks the (a, b) link up/down in the fault matrix. Returns true if
  /// the state changed.
  bool set_link_state(SwitchId a, SwitchId b, bool up);

  [[nodiscard]] const SwitchLocator* locator(SwitchId id) const;
  [[nodiscard]] bool link_alive(SwitchId a, SwitchId b) const;
  [[nodiscard]] bool adjacent(SwitchId a, SwitchId b) const;

  /// Port on `from` that faces `to`; -1 if not adjacent.
  [[nodiscard]] int port_between(SwitchId from, SwitchId to) const;

  [[nodiscard]] std::vector<SwitchId> switches_at(Level level) const;
  [[nodiscard]] std::vector<SwitchId> edges_in_pod(std::uint16_t pod) const;
  [[nodiscard]] std::vector<SwitchId> aggs_in_pod(std::uint16_t pod) const;
  [[nodiscard]] std::vector<SwitchId> cores() const;
  [[nodiscard]] const std::set<SwitchId>& neighbors(SwitchId id) const;
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] std::size_t failed_link_count() const;

  /// The edge switch registered at (pod, position); kInvalidSwitchId if
  /// unknown.
  [[nodiscard]] SwitchId edge_at(std::uint16_t pod,
                                 std::uint8_t position) const;

  /// Computes the complete avoid-sets for destination `key` given the
  /// current fault matrix:
  ///   * key = (p, e): cores that cannot deliver to edge (p, e) are avoided
  ///     by aggregation switches in other pods; aggregation switches with
  ///     no surviving path are avoided by the edges below them; in-pod
  ///     edges avoid aggregation switches whose downlink to (p, e) died.
  ///   * key = (p, any): same structure, one level coarser, for
  ///     aggregation<->core faults.
  /// A switch absent from the result has nothing to avoid.
  [[nodiscard]] PruneMap compute_prunes(const DstKey& key) const;

  /// The destination keys directly restricted by the (a, b) link.
  [[nodiscard]] std::vector<DstKey> keys_for_link(SwitchId a, SwitchId b) const;

  /// Checkpoint: the full soft-state view (locators, adjacency, fault
  /// matrix). The section is content-addressed (hash + per-switch offset
  /// table), so a fabric repeatedly forked from the same image merges
  /// only the records its own mutations touched since the last restore.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);

 private:
  struct SwitchState {
    SwitchLocator locator;
    std::map<std::uint16_t, SwitchId> port_to_neighbor;
    std::set<SwitchId> neighbor_set;
  };

  [[nodiscard]] static std::pair<SwitchId, SwitchId> link_key(SwitchId a,
                                                              SwitchId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// Flattened fat-tree view, rebuilt lazily only after *structural*
  /// change (switch population, locators, link key-set). The `alive`
  /// pointers alias link_alive_ map nodes — std::map nodes are stable, so
  /// set_link_state's in-place flips are visible through the index with
  /// no rebuild, and any path that does erase link nodes invalidates the
  /// whole index first. Adjacency-only changes (hello withdrawals,
  /// snapshot forks undoing them) patch the affected site's lists in
  /// place via patch_index_adjacency. Each per-site adjacency list is
  /// built from the *same switch's* reported neighbor set the map-based
  /// code read, so transiently asymmetric adjacency (one endpoint's hello
  /// processed, the other's not) prunes identically to the original
  /// implementation.
  struct TopoIndex {
    struct AggInfo {
      SwitchId id = kInvalidSwitchId;
      std::uint16_t pod = kUnknownPod;
      // Core neighbors by the agg's own report (steps 1-2 of
      // compute_prunes): (core slot, alive flag).
      std::vector<std::pair<std::uint32_t, const bool*>> up;
      // Edge neighbors by the agg's own report (cores_reaching target
      // check + step 3): (edge id, alive flag).
      std::vector<std::pair<SwitchId, const bool*>> down;
    };
    struct CoreInfo {
      SwitchId id = kInvalidSwitchId;
      // Agg neighbors by the core's own report (cores_reaching):
      // (agg slot, agg pod, alive flag).
      std::vector<std::tuple<std::uint32_t, std::uint16_t, const bool*>> down;
    };
    struct EdgeInfo {
      SwitchId id = kInvalidSwitchId;
      std::uint16_t pod = kUnknownPod;
      std::uint8_t position = kUnknownPosition;
      std::vector<std::uint32_t> aggs;  // agg slots, by the edge's report
    };
    bool valid = false;
    std::vector<CoreInfo> cores;  // ascending id
    std::vector<AggInfo> aggs;    // ascending id
    std::vector<EdgeInfo> edges;  // ascending id
    std::map<std::uint16_t, std::vector<std::uint32_t>> aggs_by_pod;
    std::map<std::uint16_t, std::vector<std::uint32_t>> edges_by_pod;
  };

  const TopoIndex& index() const;

  /// Fills one site's adjacency vectors from its own reported neighbor
  /// set (clearing them first). Shared by the full index build and the
  /// incremental patch below.
  void build_site_adjacency(TopoIndex& ix, Level level, std::size_t slot,
                            const SwitchState& st) const;

  /// Rebuilds just `id`'s adjacency lists inside a valid index after its
  /// reported neighbor set changed. Legal only while the switch's locator
  /// (level, pod, position) and the overall switch population are
  /// unchanged — callers invalidate the whole index otherwise.
  void patch_index_adjacency(SwitchId id, const SwitchState& st) const;

  using AdjDirtyList = std::vector<std::pair<SwitchId, const SwitchState*>>;

  /// Merges one saved switch record body (everything after the id) into
  /// `st`. Flags `structural` on locator change; appends to `adj_dirty`
  /// when the reported neighbor set moved.
  void merge_switch_body(sim::SnapshotReader& r, SwitchId id, SwitchState& st,
                         bool& structural, AdjDirtyList& adj_dirty);

  /// Sequential whole-graph reconciliation of a saved payload (offset
  /// table already skipped by the caller).
  void merge_full(sim::SnapshotReader& r, bool& structural,
                  AdjDirtyList& adj_dirty);

  /// Merges only the entries in dirty_switches_ / dirty_links_, using the
  /// payload's offset table / fixed-stride link block for random access.
  /// Returns false if anything unexpected forces a full merge instead.
  bool merge_selective(std::span<const std::uint8_t> payload,
                       bool& structural, AdjDirtyList& adj_dirty);

  /// Mutation notes for selective restore; capped — once the caps
  /// overflow, the next restore falls back to a full merge.
  void note_switch_dirty(SwitchId id);
  void note_link_dirty(std::pair<SwitchId, SwitchId> key);

  std::map<SwitchId, SwitchState> switches_;
  std::map<std::pair<SwitchId, SwitchId>, bool> link_alive_;
  mutable TopoIndex idx_;

  /// Content hash of the payload this graph was last restored from, and
  /// the mutations applied since. While the hash matches the incoming
  /// image and the dirty lists haven't overflowed, restore is
  /// O(dirty entries) instead of O(graph).
  bool restored_hash_valid_ = false;
  std::uint64_t restored_hash_ = 0;
  bool dirty_overflow_ = false;
  std::vector<SwitchId> dirty_switches_;
  std::vector<std::pair<SwitchId, SwitchId>> dirty_links_;
};

}  // namespace portland::core
