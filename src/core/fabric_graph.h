// The fabric manager's soft-state topology view (paper §3.1: network
// configuration + fault matrix).
//
// Built entirely from SwitchHello reports (locators + neighbor tables) and
// FaultNotify events (the fault matrix). From this view the FM computes,
// per destination, which next-hop switches each forwarding switch must
// avoid — the `PruneEntry` sets pushed to "affected switches" after a
// failure (paper §3.6).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/messages.h"

namespace portland::core {

/// Key identifying a destination whose reachability a fault can restrict:
/// a specific edge locator (pod, position) or a whole pod
/// (position == kUnknownPosition).
struct DstKey {
  std::uint16_t pod = kUnknownPod;
  std::uint8_t position = kUnknownPosition;

  friend bool operator==(const DstKey&, const DstKey&) = default;
  friend bool operator<(const DstKey& a, const DstKey& b) {
    if (a.pod != b.pod) return a.pod < b.pod;
    return a.position < b.position;
  }
};

/// For one destination key: per affected switch, the set of next-hop
/// switch ids to avoid.
using PruneMap = std::map<SwitchId, std::set<SwitchId>>;

class FabricGraph {
 public:
  /// Ingests a switch's location + adjacency report. Newly reported links
  /// default to alive. Returns true when the switch's locator or
  /// adjacency actually changed (callers re-derive routing state then).
  bool apply_hello(SwitchId id, const SwitchHello& hello);

  /// Marks the (a, b) link up/down in the fault matrix. Returns true if
  /// the state changed.
  bool set_link_state(SwitchId a, SwitchId b, bool up);

  [[nodiscard]] const SwitchLocator* locator(SwitchId id) const;
  [[nodiscard]] bool link_alive(SwitchId a, SwitchId b) const;
  [[nodiscard]] bool adjacent(SwitchId a, SwitchId b) const;

  /// Port on `from` that faces `to`; -1 if not adjacent.
  [[nodiscard]] int port_between(SwitchId from, SwitchId to) const;

  [[nodiscard]] std::vector<SwitchId> switches_at(Level level) const;
  [[nodiscard]] std::vector<SwitchId> edges_in_pod(std::uint16_t pod) const;
  [[nodiscard]] std::vector<SwitchId> aggs_in_pod(std::uint16_t pod) const;
  [[nodiscard]] std::vector<SwitchId> cores() const;
  [[nodiscard]] const std::set<SwitchId>& neighbors(SwitchId id) const;
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] std::size_t failed_link_count() const;

  /// The edge switch registered at (pod, position); kInvalidSwitchId if
  /// unknown.
  [[nodiscard]] SwitchId edge_at(std::uint16_t pod,
                                 std::uint8_t position) const;

  /// Computes the complete avoid-sets for destination `key` given the
  /// current fault matrix:
  ///   * key = (p, e): cores that cannot deliver to edge (p, e) are avoided
  ///     by aggregation switches in other pods; aggregation switches with
  ///     no surviving path are avoided by the edges below them; in-pod
  ///     edges avoid aggregation switches whose downlink to (p, e) died.
  ///   * key = (p, any): same structure, one level coarser, for
  ///     aggregation<->core faults.
  /// A switch absent from the result has nothing to avoid.
  [[nodiscard]] PruneMap compute_prunes(const DstKey& key) const;

  /// The destination keys directly restricted by the (a, b) link.
  [[nodiscard]] std::vector<DstKey> keys_for_link(SwitchId a, SwitchId b) const;

 private:
  struct SwitchState {
    SwitchLocator locator;
    std::map<std::uint16_t, SwitchId> port_to_neighbor;
    std::set<SwitchId> neighbor_set;
  };

  [[nodiscard]] static std::pair<SwitchId, SwitchId> link_key(SwitchId a,
                                                              SwitchId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// Cores with an alive path into edge `target` (or any edge of the pod
  /// when `target` is kInvalidSwitchId).
  [[nodiscard]] std::set<SwitchId> cores_reaching(std::uint16_t pod,
                                                  SwitchId target) const;

  std::map<SwitchId, SwitchState> switches_;
  std::map<std::pair<SwitchId, SwitchId>, bool> link_alive_;
};

}  // namespace portland::core
