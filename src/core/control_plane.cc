#include "core/control_plane.h"

#include "common/logging.h"
#include "sim/snapshot.h"

namespace portland::core {

void ControlPlane::send(SwitchId to, const ControlMessage& msg,
                        SimDuration extra_delay) {
  std::vector<std::uint8_t> bytes = serialize_control(msg);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ++messages_sent_;
    bytes_sent_ += bytes.size();
    const char* type = control_type_name(msg.body);
    counters_.add(type);
    counters_.add(std::string(type) + "_bytes", bytes.size());
  }

  // Deliver on the destination endpoint's shard: with the 500µs control
  // latency far above the engine lookahead, the arrival always lands in a
  // later window, so the handler runs race-free on its own shard. The
  // delivery is a data event (bytes carry the wire message, arg the
  // address), so in-flight control traffic serializes into a snapshot.
  const auto hint = shard_hints_.find(to);
  const sim::ShardId dst =
      hint == shard_hints_.end() ? sim::kNoShard : hint->second;
  sim_->at_shard_data(dst, sim_->now() + latency_ + extra_delay, this,
                      /*kind=*/0, /*arg=*/to, nullptr, std::move(bytes));
}

void ControlPlane::execute_data_event(std::uint32_t kind, std::uint64_t arg,
                                      const sim::FramePtr& frame,
                                      const sim::FrameBytes& bytes) {
  (void)kind;
  (void)frame;
  const auto to = static_cast<SwitchId>(arg);
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    std::lock_guard<std::mutex> lk(mutex_);
    counters_.add("undeliverable");
    return;
  }
  const auto parsed = parse_control(bytes);
  if (!parsed.has_value()) {
    std::lock_guard<std::mutex> lk(mutex_);
    counters_.add("parse_error");
    return;
  }
  it->second(*parsed);
}

void ControlPlane::save_state(sim::SnapshotWriter& w) const {
  std::lock_guard<std::mutex> lk(mutex_);
  w.u64(messages_sent_);
  w.u64(bytes_sent_);
  sim::save_counters(w, counters_);
}

void ControlPlane::restore_state(sim::SnapshotReader& r) {
  std::lock_guard<std::mutex> lk(mutex_);
  messages_sent_ = r.u64();
  bytes_sent_ = r.u64();
  sim::restore_counters(r, counters_);
}

}  // namespace portland::core
