#include "core/control_plane.h"

#include "common/logging.h"

namespace portland::core {

void ControlPlane::send(SwitchId to, const ControlMessage& msg,
                        SimDuration extra_delay) {
  const std::vector<std::uint8_t> bytes = serialize_control(msg);
  ++messages_sent_;
  bytes_sent_ += bytes.size();
  const char* type = control_type_name(msg.body);
  counters_.add(type);
  counters_.add(std::string(type) + "_bytes", bytes.size());

  sim_->after(latency_ + extra_delay, [this, to, bytes = std::move(bytes)] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      counters_.add("undeliverable");
      return;
    }
    const auto parsed = parse_control(bytes);
    if (!parsed.has_value()) {
      counters_.add("parse_error");
      return;
    }
    it->second(*parsed);
  });
}

}  // namespace portland::core
