#include "core/control_plane.h"

#include "common/logging.h"

namespace portland::core {

void ControlPlane::send(SwitchId to, const ControlMessage& msg,
                        SimDuration extra_delay) {
  std::vector<std::uint8_t> bytes = serialize_control(msg);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ++messages_sent_;
    bytes_sent_ += bytes.size();
    const char* type = control_type_name(msg.body);
    counters_.add(type);
    counters_.add(std::string(type) + "_bytes", bytes.size());
  }

  // Deliver on the destination endpoint's shard: with the 500µs control
  // latency far above the engine lookahead, the arrival always lands in a
  // later window, so the handler runs race-free on its own shard.
  const auto hint = shard_hints_.find(to);
  const sim::ShardId dst =
      hint == shard_hints_.end() ? sim::kNoShard : hint->second;
  sim_->at_shard(dst, sim_->now() + latency_ + extra_delay,
                 [this, to, bytes = std::move(bytes)] {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      std::lock_guard<std::mutex> lk(mutex_);
      counters_.add("undeliverable");
      return;
    }
    const auto parsed = parse_control(bytes);
    if (!parsed.has_value()) {
      std::lock_guard<std::mutex> lk(mutex_);
      counters_.add("parse_error");
      return;
    }
    it->second(*parsed);
  });
}

}  // namespace portland::core
