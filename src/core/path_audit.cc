#include "core/path_audit.h"

#include <algorithm>

#include "common/byte_io.h"
#include "common/strings.h"
#include "host/host.h"
#include "net/packet.h"

namespace portland::core {

PathAuditor::PathAuditor(PortlandFabric& fabric) : fabric_(&fabric) {
  fabric_->network().set_frame_tap(
      [this](const sim::Link& link, int rx_side, const sim::FramePtr& frame) {
        on_delivery(link, rx_side, frame);
      });
}

PathAuditor::~PathAuditor() { fabric_->network().set_frame_tap({}); }

void PathAuditor::on_delivery(const sim::Link& link, int rx_side,
                              const sim::FramePtr& frame) {
  // LDP frames dominate tap deliveries; skip them on a raw EtherType peek
  // so the audit never forces parse metadata onto control traffic.
  const auto bytes = sim::frame_span(frame);
  if (bytes.size() >= net::EthernetHeader::kSize &&
      (static_cast<std::uint16_t>(bytes[12]) << 8 | bytes[13]) ==
          net::to_u16(net::EtherType::kLdp)) {
    return;
  }
  // Data frames already carry their parse from the first switch hop.
  const net::ParsedFrame& parsed = net::parsed_of(frame);
  // Audit unicast UDP data packets only (probe flows carry a u64 sequence
  // number as the first payload bytes).
  if (!parsed.valid || !parsed.udp.has_value() || parsed.payload.size() < 8 ||
      parsed.eth.dst.is_multicast()) {
    return;
  }
  ByteReader r(parsed.payload);
  PacketKey key;
  key.src_ip = parsed.ipv4->src.value();
  key.dst_ip = parsed.ipv4->dst.value();
  key.src_port = parsed.udp->src_port;
  key.dst_port = parsed.udp->dst_port;
  key.seq = r.u64();

  const sim::Device& receiver = link.device(rx_side);
  if (const auto* sw = dynamic_cast<const PortlandSwitch*>(&receiver)) {
    in_flight_[key].push_back(sw);
    return;
  }
  if (dynamic_cast<const host::Host*>(&receiver) != nullptr) {
    const auto it = in_flight_.find(key);
    if (it == in_flight_.end()) {
      // Delivered without crossing any PortLand switch (e.g. a hypervisor
      // vswitch kept it local): a zero-hop path.
      finish(key, {});
      return;
    }
    std::vector<const PortlandSwitch*> path = std::move(it->second);
    in_flight_.erase(it);
    finish(key, std::move(path));
  }
}

void PathAuditor::finish(const PacketKey& key,
                         std::vector<const PortlandSwitch*> path) {
  ++completed_;
  hops_[path.size()] += 1;

  auto violate = [&](const char* what) {
    std::string trail;
    for (const PortlandSwitch* sw : path) {
      trail += sw->name();
      trail += ' ';
    }
    violations_.push_back(str_format(
        "packet %08x->%08x seq %llu: %s (path: %s)", key.src_ip, key.dst_ip,
        static_cast<unsigned long long>(key.seq), what, trail.c_str()));
  };

  // Invariant 1: no switch visited twice.
  std::vector<const PortlandSwitch*> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    violate("switch visited twice (loop!)");
  }

  // Invariant 2: at most 5 switch hops (fat-tree diameter).
  if (path.size() > 5) violate("more than 5 switch hops");

  // Invariant 3: levels rise then fall, never rise again (§3.5).
  bool descending = false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const int prev = static_cast<int>(path[i - 1]->locator().level);
    const int cur = static_cast<int>(path[i]->locator().level);
    if (cur < prev) {
      descending = true;
    } else if (descending && cur > prev) {
      violate("packet went up after going down (valley)");
      break;
    } else if (cur == prev) {
      violate("lateral hop between same-level switches");
      break;
    }
  }
}

}  // namespace portland::core
