#include "core/migration.h"

#include <cassert>

#include "common/logging.h"

namespace portland::core {

void MigrationController::schedule(const Plan& plan) {
  host::Host* vm = fabric_->host(plan.vm_host_index);
  sim::Link* old_link = fabric_->host_link(plan.vm_host_index);
  assert(vm != nullptr && old_link != nullptr && "VM must be attached");
  PortlandSwitch& new_edge = fabric_->edge_at(plan.to_pod, plan.to_edge);
  assert(!new_edge.port_connected(plan.to_port) && "target port must be free");

  sim::Simulator& sim = fabric_->sim();
  sim.at(plan.start, [this, vm, old_link] {
    ++started_;
    PLOG_INFO("migration: detaching %s", vm->name().c_str());
    fabric_->network().disconnect(*old_link);
  });
  sim.at(plan.start + plan.downtime, [this, vm, &new_edge, plan] {
    fabric_->network().connect(*vm, 0, new_edge, plan.to_port,
                               fabric_->options().host_link);
    // The migrated VM announces itself from the new location; the fabric
    // handles the rest (registration, invalidation, redirects). The VM
    // keeps its original event shard — its new access link is simply a
    // cross-shard link — so the announcement runs under its shard guard.
    {
      sim::ShardGuard guard(fabric_->sim(), vm->shard());
      vm->send_gratuitous_arp();
    }
    ++finished_;
    PLOG_INFO("migration: %s re-attached at %s port %zu", vm->name().c_str(),
              new_edge.name().c_str(), plan.to_port);
  });
}

}  // namespace portland::core
