#include "core/pmac.h"

#include "common/strings.h"

namespace portland::core {

std::string Pmac::to_string() const {
  return str_format("pmac(pod=%u,pos=%u,port=%u,vmid=%u)", pod, position, port,
                    vmid);
}

}  // namespace portland::core
