// Switch identity and location as discovered by LDP.
#pragma once

#include <cstdint>
#include <string>

#include "common/byte_io.h"

namespace portland::core {

/// Tree level of a switch. LDP starts every switch at kUnknown and settles
/// on one of the other values (paper §3.4).
enum class Level : std::uint8_t {
  kUnknown = 0,
  kEdge = 1,
  kAggregation = 2,
  kCore = 3,
};

[[nodiscard]] const char* to_string(Level level);

/// Sentinel values for not-yet-discovered location fields.
constexpr std::uint16_t kUnknownPod = 0xFFFF;
constexpr std::uint8_t kUnknownPosition = 0xFF;

using SwitchId = std::uint64_t;
constexpr SwitchId kInvalidSwitchId = 0;

/// A switch's discovered location. Equality of (pod, position) identifies
/// a location; `switch_id` is the stable hardware identity.
struct SwitchLocator {
  SwitchId switch_id = kInvalidSwitchId;
  Level level = Level::kUnknown;
  std::uint16_t pod = kUnknownPod;
  std::uint8_t position = kUnknownPosition;

  [[nodiscard]] bool located() const {
    switch (level) {
      case Level::kUnknown:
        return false;
      case Level::kCore:
        return true;  // cores have no pod/position
      case Level::kAggregation:
        return pod != kUnknownPod;
      case Level::kEdge:
        return pod != kUnknownPod && position != kUnknownPosition;
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static SwitchLocator deserialize(ByteReader& r);

  friend bool operator==(const SwitchLocator&, const SwitchLocator&) = default;
};

}  // namespace portland::core
