#include "core/ldp_agent.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/logging.h"
#include "sim/snapshot.h"

namespace portland::core {

namespace {

void save_locator(sim::SnapshotWriter& w, const SwitchLocator& loc) {
  w.u64(loc.switch_id);
  w.u8(static_cast<std::uint8_t>(loc.level));
  w.u16(loc.pod);
  w.u8(loc.position);
}

SwitchLocator restore_locator(sim::SnapshotReader& r) {
  SwitchLocator loc;
  loc.switch_id = r.u64();
  loc.level = static_cast<Level>(r.u8());
  loc.pod = r.u16();
  loc.position = r.u8();
  return loc;
}

}  // namespace

LdpAgent::LdpAgent(sim::Simulator& sim, SwitchId id, std::size_t num_ports,
                   const PortlandConfig& config, Hooks hooks, Rng rng)
    : sim_(&sim),
      config_(config),
      hooks_(std::move(hooks)),
      rng_(rng),
      num_ports_(num_ports),
      ports_(num_ports),
      position_timer_(sim),
      pod_timer_(sim),
      ldm_timer_(sim, config.ldm_period, [this] { send_ldms(); }),
      sweep_timer_(sim, config.ldm_period, [this] { liveness_sweep(); }) {
  self_.switch_id = id;
}

void LdpAgent::start() {
  // Stagger LDM phases across switches so the fabric does not synchronize.
  const SimDuration phase =
      static_cast<SimDuration>(rng_.next_below(
          static_cast<std::uint64_t>(config_.ldm_period)));
  ldm_timer_.start(phase);
  sweep_timer_.start(phase + config_.ldm_period / 2);
}

void LdpAgent::send_ldms() {
  LdpMessage m;
  m.type = LdpType::kLdm;
  m.from = self_;
  const SimTime now = sim_->now();
  for (sim::PortId p = 0; p < num_ports_; ++p) {
    m.sender_port = static_cast<std::uint16_t>(p);
    // Echo whom we last heard on this port (fresh only): the neighbor
    // uses this to confirm its transmit direction toward us works.
    const PortState& ps = ports_[p];
    m.heard_id = (ps.neighbor.has_value() &&
                  now - ps.last_ldm <= config_.neighbor_timeout)
                     ? ps.neighbor->switch_id
                     : kInvalidSwitchId;
    auto frame = m.to_frame();
    ldm_bytes_sent_ += frame.size();
    ++ldms_sent_;
    hooks_.send_frame(p, std::move(frame));
  }
}

void LdpAgent::liveness_sweep() {
  const SimTime now = sim_->now();
  for (sim::PortId p = 0; p < num_ports_; ++p) {
    PortState& ps = ports_[p];
    if (!ps.neighbor.has_value()) continue;
    if (now - ps.last_ldm > config_.neighbor_timeout) {
      // Failure detected: 5 consecutive LDMs missed (paper §3.6).
      expire_neighbor(p);
      continue;
    }
    // The neighbor is audible, but has it stopped hearing US? A stale
    // echo means our transmit direction died (unidirectional failure):
    // stop forwarding through the port and report the fault.
    if (!ps.echo_lost && now - ps.last_echo > config_.neighbor_timeout) {
      ps.echo_lost = true;
      ps.reported_down = true;
      invalidate_topology();
      hooks_.neighbor_event(p, ps.neighbor->switch_id, /*lost=*/true);
    }
  }
}

void LdpAgent::expire_neighbor(sim::PortId port) {
  PortState& ps = ports_[port];
  if (!ps.neighbor.has_value()) return;
  const SwitchId lost = ps.neighbor->switch_id;
  // Free any position reservation held by the lost edge.
  for (auto it = position_owners_.begin(); it != position_owners_.end();) {
    it = (it->second == lost) ? position_owners_.erase(it) : std::next(it);
  }
  ps.neighbor.reset();
  ps.last_echo = -1;
  ps.echo_lost = false;
  ps.reported_down = true;
  invalidate_topology();
  hooks_.neighbor_event(port, lost, /*lost=*/true);
}

void LdpAgent::handle_frame(sim::PortId port,
                            std::span<const std::uint8_t> bytes) {
  const auto msg = LdpMessage::from_frame(bytes);
  if (!msg.has_value()) return;
  PortState& ps = ports_[port];

  switch (msg->type) {
    case LdpType::kLdm: {
      ++ldms_received_;
      ps.last_ldm = sim_->now();
      ps.host_seen = false;  // LDMs mean a switch, not a host
      const bool is_new = !ps.neighbor.has_value();
      const bool changed = is_new || *ps.neighbor != msg->from;
      ps.neighbor = msg->from;
      if (is_new) {
        // Grace period: give the neighbor one timeout to start echoing us
        // before declaring the reverse direction dead.
        ps.last_echo = sim_->now();
      }
      if (msg->heard_id == self_.switch_id) {
        ps.last_echo = sim_->now();
        if (ps.echo_lost) {
          // Reverse direction healed.
          ps.echo_lost = false;
          ps.reported_down = false;
          invalidate_topology();
          hooks_.neighbor_event(port, msg->from.switch_id, /*lost=*/false);
        }
      }
      if (is_new && ps.reported_down) {
        ps.reported_down = false;
        hooks_.neighbor_event(port, msg->from.switch_id, /*lost=*/false);
      }
      if (changed) {
        invalidate_topology();
        maybe_infer_level();
        adopt_pod(msg->from);
        // Aggregation switches track confirmed edge positions from LDMs so
        // reservations survive agg restarts and proposals can be vetted.
        if (self_.level == Level::kAggregation &&
            msg->from.level == Level::kEdge &&
            msg->from.position != kUnknownPosition) {
          position_owners_[msg->from.position] = msg->from.switch_id;
        }
        if (self_.level == Level::kEdge && !position_confirmed_) {
          // A new aggregation neighbor appeared mid-negotiation; restart so
          // its ack is included.
          start_position_negotiation();
        }
        hooks_.neighbor_event(port, msg->from.switch_id, /*lost=*/false);
      }
      break;
    }
    case LdpType::kProposePosition:
      handle_proposal(port, *msg);
      break;
    case LdpType::kPositionAck:
    case LdpType::kPositionNack:
      handle_vote(*msg);
      break;
  }
}

void LdpAgent::note_host_traffic(sim::PortId port) {
  PortState& ps = ports_[port];
  if (ps.neighbor.has_value()) return;  // it's a switch port
  if (!ps.host_seen) {
    ps.host_seen = true;
    invalidate_topology();
    if (self_.level == Level::kUnknown) {
      set_level(Level::kEdge);
      start_position_negotiation();
    }
  }
}

void LdpAgent::set_level(Level level) {
  if (self_.level == level) return;
  assert(self_.level == Level::kUnknown && "levels are sticky");
  self_.level = level;
  if (level == Level::kCore) {
    // Cores are fully located without pod/position.
  }
  invalidate_topology();
  hooks_.location_changed();
}

void LdpAgent::maybe_infer_level() {
  if (self_.level != Level::kUnknown) return;
  std::size_t agg_neighbors = 0;
  bool any_edge = false;
  bool any_host = false;
  for (const PortState& ps : ports_) {
    if (ps.host_seen) any_host = true;
    if (!ps.neighbor.has_value()) continue;
    if (ps.neighbor->level == Level::kEdge) any_edge = true;
    if (ps.neighbor->level == Level::kAggregation) ++agg_neighbors;
  }
  if (any_host) {
    set_level(Level::kEdge);
    start_position_negotiation();
    return;
  }
  if (any_edge) {
    set_level(Level::kAggregation);
    return;
  }
  // Core: aggregation neighbors on a strict majority of ports and nothing
  // below us. (An edge switch can have at most half its ports on
  // aggregation switches, so the majority rule cannot misfire.)
  if (agg_neighbors > num_ports_ / 2) {
    set_level(Level::kCore);
  }
}

void LdpAgent::adopt_pod(const SwitchLocator& nbr) {
  if (self_.pod != kUnknownPod) return;
  if (nbr.pod == kUnknownPod) return;
  // Pod numbers flow edge <-> aggregation within a pod; cores never adopt.
  const bool adopt =
      (self_.level == Level::kEdge && nbr.level == Level::kAggregation) ||
      (self_.level == Level::kAggregation && nbr.level == Level::kEdge);
  if (!adopt) return;
  self_.pod = nbr.pod;
  hooks_.location_changed();
  maybe_request_pod();
}

// ---------------------------------------------------------------------------
// Position negotiation (edge side)
// ---------------------------------------------------------------------------

void LdpAgent::start_position_negotiation() {
  if (position_confirmed_ || self_.level != Level::kEdge) return;
  propose_position();
}

void LdpAgent::propose_position() {
  if (position_confirmed_) return;

  // Pick a candidate position not yet nacked; when everything was nacked,
  // clear and retry (reservations expire as edges die).
  if (positions_nacked_.size() >= half()) positions_nacked_.clear();
  if (proposed_position_ == kUnknownPosition ||
      positions_nacked_.count(proposed_position_) != 0) {
    std::vector<std::uint8_t> candidates;
    for (std::size_t pos = 0; pos < half(); ++pos) {
      const auto p = static_cast<std::uint8_t>(pos);
      if (positions_nacked_.count(p) == 0) candidates.push_back(p);
    }
    assert(!candidates.empty());
    proposed_position_ =
        candidates[rng_.next_below(candidates.size())];
  }
  proposal_nonce_ = static_cast<std::uint32_t>(rng_.next());
  proposal_pending_.clear();

  LdpMessage m;
  m.type = LdpType::kProposePosition;
  m.from = self_;
  m.position = proposed_position_;
  m.nonce = proposal_nonce_;
  for (sim::PortId p = 0; p < num_ports_; ++p) {
    const PortState& ps = ports_[p];
    if (!ps.neighbor.has_value()) continue;
    // Proposals go to every switch neighbor; only aggregation switches of
    // our pod answer them. (Before levels settle we may not know which
    // neighbors are aggs yet.)
    proposal_pending_.insert(ps.neighbor->switch_id);
    m.sender_port = static_cast<std::uint16_t>(p);
    hooks_.send_frame(p, m.to_frame());
  }

  // Retry until confirmed (handles losses and late-arriving aggs).
  position_timer_.schedule_after(
      config_.position_retry +
          static_cast<SimDuration>(
              rng_.next_below(static_cast<std::uint64_t>(config_.position_retry))),
      [this] { propose_position(); });
}

void LdpAgent::handle_proposal(sim::PortId port, const LdpMessage& m) {
  // Aggregation side: grant if free or already owned by this same edge.
  if (self_.level == Level::kEdge) return;  // edges never arbitrate
  const SwitchId proposer = m.from.switch_id;
  const std::uint8_t pos = m.position;

  bool grant;
  const auto it = position_owners_.find(pos);
  if (it == position_owners_.end() || it->second == proposer) {
    grant = true;
    // One reservation per edge: drop any other position it held.
    for (auto o = position_owners_.begin(); o != position_owners_.end();) {
      o = (o->second == proposer && o->first != pos) ? position_owners_.erase(o)
                                                     : std::next(o);
    }
    position_owners_[pos] = proposer;
  } else {
    grant = false;
  }

  LdpMessage reply;
  reply.type = grant ? LdpType::kPositionAck : LdpType::kPositionNack;
  reply.from = self_;
  reply.sender_port = static_cast<std::uint16_t>(port);
  reply.position = pos;
  reply.nonce = m.nonce;
  hooks_.send_frame(port, reply.to_frame());
}

void LdpAgent::handle_vote(const LdpMessage& m) {
  if (position_confirmed_ || self_.level != Level::kEdge) return;
  if (m.nonce != proposal_nonce_ || m.position != proposed_position_) return;

  if (m.type == LdpType::kPositionNack) {
    positions_nacked_.insert(proposed_position_);
    proposed_position_ = kUnknownPosition;
    // Re-propose after a randomized delay to break ties with the edge that
    // beat us to the slot.
    position_timer_.schedule_after(
        static_cast<SimDuration>(rng_.next_below(
            static_cast<std::uint64_t>(config_.position_retry))),
        [this] { propose_position(); });
    return;
  }

  proposal_pending_.erase(m.from.switch_id);
  if (proposal_pending_.empty()) {
    position_confirmed_ = true;
    position_timer_.cancel();
    self_.position = proposed_position_;
    hooks_.location_changed();
    maybe_request_pod();
  }
}

// ---------------------------------------------------------------------------
// Pod acquisition
// ---------------------------------------------------------------------------

void LdpAgent::maybe_request_pod() {
  // The edge switch that won position 0 asks the fabric manager for a pod
  // number on behalf of its pod (paper §3.4).
  if (self_.pod != kUnknownPod) {
    pod_timer_.cancel();
    return;
  }
  if (self_.level != Level::kEdge || !position_confirmed_ ||
      self_.position != 0) {
    return;
  }
  pod_requested_ = true;
  hooks_.send_to_fm(PodRequest{});
  pod_timer_.schedule_after(config_.pod_request_retry,
                            [this] { maybe_request_pod(); });
}

void LdpAgent::handle_pod_assignment(std::uint16_t pod) {
  if (self_.pod == pod) return;
  if (self_.pod != kUnknownPod) return;  // pods are sticky
  self_.pod = pod;
  pod_timer_.cancel();
  hooks_.location_changed();
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

std::optional<SwitchLocator> LdpAgent::neighbor(sim::PortId port) const {
  return port < ports_.size() ? ports_[port].neighbor : std::nullopt;
}

bool LdpAgent::port_bidirectional(sim::PortId port) const {
  if (port >= ports_.size()) return false;
  const PortState& ps = ports_[port];
  return ps.neighbor.has_value() && !ps.echo_lost;
}

bool LdpAgent::is_host_port(sim::PortId port) const {
  return port < ports_.size() && ports_[port].host_seen &&
         !ports_[port].neighbor.has_value();
}

void LdpAgent::invalidate_topology() {
  ++topology_generation_;
  port_caches_dirty_ = true;
}

void LdpAgent::rebuild_port_caches() const {
  ++port_cache_rebuilds_;
  port_caches_dirty_ = false;
  up_cache_.clear();
  down_cache_.clear();

  const Level above = self_.level == Level::kEdge ? Level::kAggregation
                      : self_.level == Level::kAggregation ? Level::kCore
                                                           : Level::kUnknown;
  for (sim::PortId p = 0; p < ports_.size(); ++p) {
    const PortState& ps = ports_[p];
    if (above != Level::kUnknown && ps.neighbor.has_value() &&
        !ps.echo_lost && ps.neighbor->level == above) {
      up_cache_.push_back(p);
    }
    switch (self_.level) {
      case Level::kEdge:
        if (ps.host_seen && !ps.neighbor.has_value()) down_cache_.push_back(p);
        break;
      case Level::kAggregation:
        if (ps.neighbor.has_value() && !ps.echo_lost &&
            ps.neighbor->level == Level::kEdge) {
          down_cache_.push_back(p);
        }
        break;
      case Level::kCore:
        if (ps.neighbor.has_value() && !ps.echo_lost &&
            ps.neighbor->level == Level::kAggregation) {
          down_cache_.push_back(p);
        }
        break;
      case Level::kUnknown:
        break;
    }
  }
}

const std::vector<sim::PortId>& LdpAgent::up_ports() const {
  if (port_caches_dirty_) rebuild_port_caches();
  return up_cache_;
}

const std::vector<sim::PortId>& LdpAgent::down_ports() const {
  if (port_caches_dirty_) rebuild_port_caches();
  return down_cache_;
}

void LdpAgent::save_state(sim::SnapshotWriter& w) const {
  save_locator(w, self_);
  const auto rng = rng_.state();
  for (const std::uint64_t word : rng) w.u64(word);

  w.u32(static_cast<std::uint32_t>(ports_.size()));
  for (const PortState& ps : ports_) {
    w.u8(ps.neighbor.has_value() ? 1 : 0);
    if (ps.neighbor.has_value()) save_locator(w, *ps.neighbor);
    w.i64(ps.last_ldm);
    w.i64(ps.last_echo);
    w.u8(ps.host_seen ? 1 : 0);
    w.u8(ps.reported_down ? 1 : 0);
    w.u8(ps.echo_lost ? 1 : 0);
  }

  w.u64(topology_generation_);
  w.u64(port_cache_rebuilds_);

  w.u8(position_confirmed_ ? 1 : 0);
  w.u8(proposed_position_);
  w.u32(proposal_nonce_);
  w.u32(static_cast<std::uint32_t>(proposal_pending_.size()));
  for (const SwitchId id : proposal_pending_) w.u64(id);
  w.u32(static_cast<std::uint32_t>(positions_nacked_.size()));
  for (const std::uint8_t pos : positions_nacked_) w.u8(pos);
  position_timer_.save_state(w);

  w.u32(static_cast<std::uint32_t>(position_owners_.size()));
  for (const auto& [pos, owner] : position_owners_) {
    w.u8(pos);
    w.u64(owner);
  }

  w.u8(pod_requested_ ? 1 : 0);
  pod_timer_.save_state(w);
  ldm_timer_.save_state(w);
  sweep_timer_.save_state(w);

  w.u64(ldms_sent_);
  w.u64(ldms_received_);
  w.u64(ldm_bytes_sent_);
}

void LdpAgent::restore_state(sim::SnapshotReader& r) {
  self_ = restore_locator(r);
  std::array<std::uint64_t, 4> rng{};
  for (std::uint64_t& word : rng) word = r.u64();
  rng_.set_state(rng);

  const std::uint32_t n_ports = r.u32();
  if (n_ports != ports_.size()) return;  // image/topology mismatch
  for (PortState& ps : ports_) {
    if (r.u8() != 0) {
      ps.neighbor = restore_locator(r);
    } else {
      ps.neighbor.reset();
    }
    ps.last_ldm = r.i64();
    ps.last_echo = r.i64();
    ps.host_seen = r.u8() != 0;
    ps.reported_down = r.u8() != 0;
    ps.echo_lost = r.u8() != 0;
  }

  topology_generation_ = r.u64();
  port_cache_rebuilds_ = r.u64();
  port_caches_dirty_ = true;  // pure caches: rebuilt lazily

  position_confirmed_ = r.u8() != 0;
  proposed_position_ = r.u8();
  proposal_nonce_ = r.u32();
  proposal_pending_.clear();
  const std::uint32_t n_pending = r.u32();
  for (std::uint32_t i = 0; i < n_pending && r.ok(); ++i) {
    proposal_pending_.insert(r.u64());
  }
  positions_nacked_.clear();
  const std::uint32_t n_nacked = r.u32();
  for (std::uint32_t i = 0; i < n_nacked && r.ok(); ++i) {
    positions_nacked_.insert(r.u8());
  }
  position_timer_.restore_at(r, [this] { propose_position(); });

  position_owners_.clear();
  const std::uint32_t n_owners = r.u32();
  for (std::uint32_t i = 0; i < n_owners && r.ok(); ++i) {
    const std::uint8_t pos = r.u8();
    position_owners_[pos] = r.u64();
  }

  pod_requested_ = r.u8() != 0;
  pod_timer_.restore_at(r, [this] { maybe_request_pod(); });
  ldm_timer_.restore_state(r);
  sweep_timer_.restore_state(r);

  ldms_sent_ = r.u64();
  ldms_received_ = r.u64();
  ldm_bytes_sent_ = r.u64();
}

std::vector<NeighborEntry> LdpAgent::neighbor_entries() const {
  std::vector<NeighborEntry> out;
  for (sim::PortId p = 0; p < ports_.size(); ++p) {
    if (!ports_[p].neighbor.has_value()) continue;
    out.push_back(
        NeighborEntry{static_cast<std::uint16_t>(p), *ports_[p].neighbor});
  }
  return out;
}

}  // namespace portland::core
